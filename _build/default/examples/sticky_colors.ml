(* Sticky theories and the two kinds of locality (Section 9).

   Example 39's one-rule sticky theory: an observer sees coloured edges and
   believes in colours; every believed colour forces another visible edge.
   The theory is BDD (sticky), but NOT local: the star instance with k
   colours needs locality constant k+1. It IS bounded-degree local: at any
   fixed degree the constant stops growing. Example 42's T_c then shows a
   BDD theory that is not even bd-local.

   Run with: dune exec examples/sticky_colors.exe *)

open Frontier

let () =
  Fmt.pr "Example 39 (sticky):@.%a@.@." Theory.pp Zoo.t_sticky;
  Fmt.pr "classification: %a@.@." Classes.pp_report (classify Zoo.t_sticky);

  (* Non-locality: on the k-colour star, deriving the deepest visible edge
     needs every fact of the instance. *)
  Fmt.pr "minimal locality constant on k-colour stars:@.";
  List.iter
    (fun k ->
      let star = Instances.sticky_star k in
      match Locality.min_constant ~depth:(k + 1) Zoo.t_sticky star ~max_l:(k + 2) with
      | Some l -> Fmt.pr "  k=%d colours: l = %d (instance has %d facts)@." k l
                    (Fact_set.cardinal star)
      | None -> Fmt.pr "  k=%d colours: > %d@." k (k + 2))
    [ 1; 2; 3; 4 ];

  (* Degree is the culprit: the star observer has degree k+2.  On
     bounded-degree instances the constant is bounded (bd-locality,
     Definition 40). *)
  let _, _, chain = Instances.path Zoo.r2 3 in
  Fmt.pr "@.on a degree-2 instance the constant is small: %a@."
    (Fmt.option Fmt.int)
    (Locality.min_constant ~depth:3 Zoo.t_sticky chain ~max_l:3);

  (* The sticky rewriting is complete and linear-size (backward shy):
     rewrite the atomic visible-edge query. *)
  let x = Term.var "x" and y = Term.var "y" and y' = Term.var "y'" in
  let t = Term.var "t" in
  let q = Cq.make ~free:[ x ] [ Atom.make Zoo.e4 [ x; y; y'; t ] ] in
  let r = Rewrite.rewrite Zoo.t_sticky q in
  (match r.Rewrite.outcome with
  | Rewrite.Complete ->
      Fmt.pr "@.rew(E4(x,_,_,_)) complete: %d disjuncts, max size %d@."
        (Ucq.cardinal r.Rewrite.ucq)
        (Ucq.max_disjunct_size r.Rewrite.ucq)
  | _ -> Fmt.pr "@.rewriting incomplete@.");

  (* Example 42: BDD but not even bd-local — on n-cycles (degree 2!) some
     chase atom needs all n facts. *)
  Fmt.pr "@.Example 42 (T_c), fact-support on n-cycles (degree 2):@.";
  List.iter
    (fun n ->
      let cyc = Instances.cycle Zoo.e2 n in
      match Locality.max_support ~depth:n ~sub_depth:n Zoo.t_c cyc with
      | Some s -> Fmt.pr "  n=%d: some atom needs %d of the %d facts@." n s n
      | None -> Fmt.pr "  n=%d: support not computable within budget@." n)
    [ 3; 4; 5; 6 ]

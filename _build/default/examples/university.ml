(* University: ontology-mediated query answering at (slightly) larger
   scale, through the caching Reasoner.

   A LUBM-flavoured ontology over departments, courses, staff and
   students. The existential rules invent unknown supervisors, curricula
   and employers; queries are answered by cached UCQ rewritings with no
   chase at query time, and every answer can be explained by a derivation
   tree over the original database.

   Run with: dune exec examples/university.exe *)

open Frontier

let ontology =
  Parse.theory ~name:"university"
    "prof_is_staff:     Professor(x) -> Staff(x)\n\
     staff_employed:    Staff(x) -> exists d. WorksFor(x, d)\n\
     works_dept:        WorksFor(x, d) -> Department(d)\n\
     dept_offers:       Department(d) -> exists c. Offers(d, c)\n\
     offers_course:     Offers(d, c) -> Course(c)\n\
     phd_supervised:    PhdStudent(s) -> exists p. SupervisedBy(s, p)\n\
     supervisor_prof:   SupervisedBy(s, p) -> Professor(p)\n\
     teaches_course:    Teaches(x, c) -> Course(c)\n\
     teaches_staff:     Teaches(x, c) -> Staff(x)\n\
     takes_student:     Takes(s, c) -> Student(s)\n\
     phd_is_student:    PhdStudent(s) -> Student(s)"

let database =
  Parse.instance
    "Professor(turing). Professor(hopper).\n\
     PhdStudent(ada). PhdStudent(haskell).\n\
     SupervisedBy(ada, turing).\n\
     Teaches(hopper, compilers). Takes(ada, compilers).\n\
     WorksFor(turing, cs).\n\
     Takes(grace, compilers)"

let show_answers label answers route =
  Fmt.pr "%s (%d answers, via %s):@." label (List.length answers)
    (match route with
    | Reasoner.Rewriting -> "rewriting"
    | Reasoner.Chase_fallback `Saturated -> "chase (saturated)"
    | Reasoner.Chase_fallback (`Prefix n) ->
        Printf.sprintf "chase prefix of depth %d" n);
  List.iter
    (fun tuple ->
      Fmt.pr "  (%a)@." (Fmt.list ~sep:(Fmt.any ", ") Term.pp) tuple)
    answers

let () =
  Fmt.pr "classification: %a@.@." Classes.pp_report (classify ontology);
  let reasoner = Reasoner.create ontology in

  (* Who is certainly employed somewhere? Professors are staff, staff work
     for some (possibly unknown) department. *)
  let q_employed = Parse.query "(x) :- WorksFor(x, d)" in
  let answers, route = Reasoner.answer reasoner database q_employed in
  show_answers "employed" answers route;
  (match Reasoner.rewriting_for reasoner q_employed with
  | Some ucq ->
      Fmt.pr "  [rew has %d disjuncts, max size %d]@.@." (Ucq.cardinal ucq)
        (Ucq.max_disjunct_size ucq)
  | None -> ());

  (* Which departments certainly offer a course? Note cs is only known to
     be a department through turing's employment. *)
  let q_offering = Parse.query "(d) :- Offers(d, c)" in
  let answers, route = Reasoner.answer reasoner database q_offering in
  show_answers "departments offering a course" answers route;

  (* Students: via Takes, via PhdStudent. *)
  let q_students = Parse.query "(s) :- Student(s)" in
  let answers, route = Reasoner.answer reasoner database q_students in
  show_answers "certain students" answers route;

  (* Every PhD student certainly has a professor supervisor — even
     haskell, whose supervisor is invented. *)
  let q_supervised = Parse.query "(s) :- SupervisedBy(s, p), Professor(p)" in
  let answers, route = Reasoner.answer reasoner database q_supervised in
  show_answers "supervised by a professor" answers route;

  Fmt.pr "@.cached rewritten query shapes: %d@."
    (Reasoner.cached_rewritings reasoner);

  (* Explain one answer end-to-end: why is haskell supervised? *)
  let run = Chase_engine.run ~max_depth:5 ontology database in
  (match Explain.explain run (Parse.query "(s) :- SupervisedBy(s, p)") [ Term.const "haskell" ] with
  | Some expl ->
      Fmt.pr "@.why is haskell supervised?@.%a@." Explain.pp expl
  | None -> Fmt.pr "@.haskell unexplained?!@.");

  (* And the whole thing again, without existential invention: the
     restricted chase reaches a finite model of this ontology. *)
  let r = Chase_variants.run_restricted ~max_applications:200 ontology database in
  Fmt.pr "@.restricted chase: %s after %d applications (%d facts)@."
    (if r.Chase_variants.saturated then "finite model" else "no model yet")
    r.Chase_variants.steps
    (Fact_set.cardinal r.Chase_variants.facts)

(* Quickstart: parse a theory, chase an instance, answer a query — both
   through the chase and through the UCQ rewriting (the BDD way).

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Example 1 of the paper. *)
  let theory =
    Frontier.Parse.theory ~name:"T_a"
      "mother: Human(y) -> exists z. Mother(y,z)\n\
       human:  Mother(x,y) -> Human(y)"
  in
  let instance = Frontier.Parse.instance "Human(abel)" in
  let query = Frontier.Parse.query "(x) :- Mother(x, m), Mother(m, g)" in

  Fmt.pr "theory:@.%a@.@." Frontier.Theory.pp theory;
  Fmt.pr "classification: %a@.@." Frontier.Classes.pp_report
    (Frontier.classify theory);

  (* The chase builds Abel's maternal line, inventing terms as needed. *)
  let run = Frontier.Chase_engine.run ~max_depth:4 theory instance in
  Fmt.pr "chase to depth %d:@.%a@.@."
    (Frontier.Chase_engine.depth run)
    Frontier.Fact_set.pp
    (Frontier.Chase_engine.result run);

  (* Certain answers: who certainly has a maternal grandmother? *)
  let answers = Frontier.certain_answers ~max_depth:5 theory instance query in
  Fmt.pr "certain answers of %a:@." Frontier.Cq.pp query;
  List.iter
    (fun tuple ->
      Fmt.pr "  (%a)@." (Fmt.list ~sep:(Fmt.any ", ") Frontier.Term.pp) tuple)
    answers;

  (* The same answers without chasing at all: rewrite, then query the
     instance directly — this is what the BDD property buys. *)
  let r = Frontier.rewrite theory query in
  Fmt.pr "@.UCQ rewriting (%d disjuncts):@.%a@."
    (Frontier.Ucq.cardinal r.Frontier.Rewrite.ucq)
    Frontier.Ucq.pp r.Frontier.Rewrite.ucq;
  match Frontier.answer_via_rewriting theory instance query with
  | Some answers' ->
      Fmt.pr "@.answers via rewriting: %d (chase found %d) — %s@."
        (List.length answers') (List.length answers)
        (if List.length answers' = List.length answers then "they agree"
         else "MISMATCH")
  | None -> Fmt.pr "@.rewriting did not complete@."

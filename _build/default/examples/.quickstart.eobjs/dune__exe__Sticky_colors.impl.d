examples/sticky_colors.ml: Atom Classes Cq Fact_set Fmt Frontier Instances List Locality Rewrite Term Theory Ucq Zoo

examples/quickstart.ml: Fmt Frontier List

examples/genealogy.ml: Fmt Frontier List Printf String

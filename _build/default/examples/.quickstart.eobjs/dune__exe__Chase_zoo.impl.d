examples/chase_zoo.ml: Atom Chase_engine Chase_variants Cores Fact_set Fmt Frontier Instances List Parse Printf String Term Termination Zoo

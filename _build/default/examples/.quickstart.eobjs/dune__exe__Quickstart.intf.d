examples/quickstart.mli:

examples/university.mli:

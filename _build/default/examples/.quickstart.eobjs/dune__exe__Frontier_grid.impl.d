examples/frontier_grid.ml: Atom Chase_engine Containment Cq Distancing Entailment Fact_set Fmt Frontier Instances List Marked_process Option Rewrite Symbol Term Theory Ucq Zoo

examples/chase_zoo.mli:

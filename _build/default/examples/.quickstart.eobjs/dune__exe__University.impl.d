examples/university.ml: Chase_engine Chase_variants Classes Explain Fact_set Fmt Frontier List Parse Printf Reasoner Term Ucq

examples/sticky_colors.mli:

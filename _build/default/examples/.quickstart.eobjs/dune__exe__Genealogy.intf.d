examples/genealogy.mli:

examples/frontier_grid.mli:

(* Tests for the rewriting library: piece unifiers, saturation (Theorem 1),
   locality and distancing analyzers. *)

open Logic
module Piece_unifier = Rewriting.Piece_unifier
module Rewrite = Rewriting.Rewrite
module Single_head = Rewriting.Single_head
module Locality = Rewriting.Locality
module Distancing = Rewriting.Distancing
module Bdd = Rewriting.Bdd

let c = Term.const
let v = Term.var
let atom = Atom.make
let e = Theories.Zoo.e2

(* ------------------------------------------------------------------ *)
(* Piece unifiers                                                      *)
(* ------------------------------------------------------------------ *)

let test_atomic_query_tp () =
  (* rew(E(x,y)) with both variables free is just {E(x,y)}: the existential
     position may not unify with an answer variable. *)
  let x = v "x" and y = v "y" in
  let q = Cq.make ~free:[ x; y ] [ atom e [ x; y ] ] in
  let rewritings =
    Piece_unifier.one_step q (List.hd (Theory.rules Theories.Zoo.t_p))
  in
  Alcotest.(check int) "no rewriting" 0 (List.length rewritings)

let test_boolean_edge_tp () =
  (* exists x y. E(x,y) rewrites to an isomorphic copy of itself. *)
  let x = v "x" and y = v "y" in
  let q = Cq.make ~free:[] [ atom e [ x; y ] ] in
  let rewritings =
    Piece_unifier.one_step q (List.hd (Theory.rules Theories.Zoo.t_p))
  in
  Alcotest.(check int) "one rewriting" 1 (List.length rewritings);
  Alcotest.(check bool) "isomorphic to the query" true
    (Containment.equivalent q (List.hd rewritings))

let test_separating_variable_blocked () =
  (* In exists x y z. E(x,y), E(y,z), the atom E(x,y) cannot be rewritten:
     y is shared with the rest of the query (separating) and would have to
     unify with the rule's existential position. *)
  let x = v "x" and y = v "y" and z = v "z" in
  let q = Cq.make ~free:[] [ atom e [ x; y ]; atom e [ y; z ] ] in
  let rewritings =
    Piece_unifier.one_step q (List.hd (Theory.rules Theories.Zoo.t_p))
  in
  (* Only the last atom E(y,z) is rewritable; the result cores down to a
     single edge. *)
  Alcotest.(check int) "one rewriting" 1 (List.length rewritings);
  Alcotest.(check int) "cored to one atom" 1 (Cq.size (List.hd rewritings))

(* ------------------------------------------------------------------ *)
(* Saturation                                                          *)
(* ------------------------------------------------------------------ *)

let test_rew_ta_mother () =
  (* rew(exists y. Mother(x,y)) under T_a =
     { Mother(x,y) | Human(x) | Mother(z,x) }. *)
  let x = v "x" and y = v "y" in
  let q = Cq.make ~free:[ x ] [ atom Theories.Zoo.mother [ x; y ] ] in
  let r = Rewrite.rewrite Theories.Zoo.t_a q in
  Alcotest.(check bool) "complete" true (r.Rewrite.outcome = Rewrite.Complete);
  Alcotest.(check int) "three disjuncts" 3 (Ucq.cardinal r.Rewrite.ucq);
  let human_x = Cq.make ~free:[ x ] [ atom Theories.Zoo.human [ x ] ] in
  Alcotest.(check bool) "contains Human(x)" true
    (Ucq.exists (fun d -> Containment.equivalent d human_x) r.Rewrite.ucq)

let test_rew_selfloop_loopcut () =
  (* Under T_loopcut, exists x. E(x,x) is equivalent over instances to
     exists x y. E(x,y). *)
  let x = v "x" and y = v "y" in
  let q = Cq.make ~free:[] [ atom e [ x; x ] ] in
  let r = Rewrite.rewrite Theories.Zoo.t_loopcut q in
  Alcotest.(check bool) "complete" true (r.Rewrite.outcome = Rewrite.Complete);
  let edge = Cq.make ~free:[] [ atom e [ x; y ] ] in
  Alcotest.(check bool) "edge disjunct present" true
    (Ucq.exists (fun d -> Containment.equivalent d edge) r.Rewrite.ucq);
  Alcotest.(check bool) "UCQ true on a single edge" true
    (Ucq.boolean_holds r.Rewrite.ucq
       (Theories.Instances.single_edge e))

let test_rs_linear_growth () =
  (* Observation 31 shape check on the linear T_p: the endpoint-pinned path
     query has rs equal to its own size. *)
  List.iter
    (fun n ->
      let _, _, q = Theories.Zoo.e_path_query n in
      match Rewrite.rs Theories.Zoo.t_p q with
      | Some rs -> Alcotest.(check int) (Printf.sprintf "rs path %d" n) n rs
      | None -> Alcotest.fail "rewriting should complete")
    [ 1; 2; 3; 4 ]

let test_nonbdd_diverges () =
  (* Example 41: the rewriting of exists u. R(x,u) for answer x grows
     unboundedly — the budget must trip. *)
  let x = v "x" and u = v "u" in
  let q = Cq.make ~free:[ x ] [ atom Theories.Zoo.r2 [ x; u ] ] in
  let budget =
    { Rewrite.max_disjuncts = 40; max_atoms_per_disjunct = 25; max_steps = 200 }
  in
  let r = Rewrite.rewrite ~budget Theories.Zoo.t_nonbdd q in
  Alcotest.(check bool) "budget exhausted" true
    (r.Rewrite.outcome <> Rewrite.Complete)

let test_e28_completes_with_growing_rew () =
  (* Example 28 truncations are BDD; the rewriting of an E_0-atom query
     walks up through all levels, one disjunct per level. *)
  let x = v "x" and y = v "y" in
  let q = Cq.make ~free:[] [ atom (Theories.Zoo.e_k 0) [ x; y ] ] in
  List.iter
    (fun n ->
      let r = Rewrite.rewrite (Theories.Zoo.t_e28 n) q in
      Alcotest.(check bool) "complete" true
        (r.Rewrite.outcome = Rewrite.Complete);
      Alcotest.(check int)
        (Printf.sprintf "disjuncts for n=%d" n)
        (n + 1)
        (Ucq.cardinal r.Rewrite.ucq))
    [ 1; 2; 3 ]

let test_split_batch_large_frontier () =
  (* A divergent saturation accumulates frontiers far beyond the stack
     depth a naive [List.take]-style split would survive; [split_batch]
     must stay tail-recursive and order-preserving at that scale. *)
  let n = 1_000_000 in
  let l = List.init n Fun.id in
  let batch, rest = Rewrite.split_batch 600_000 l in
  Alcotest.(check int) "batch size" 600_000 (List.length batch);
  Alcotest.(check int) "rest size" 400_000 (List.length rest);
  Alcotest.(check int) "batch starts at head" 0 (List.hd batch);
  Alcotest.(check int) "rest continues in order" 600_000 (List.hd rest);
  Alcotest.(check bool) "concatenation restores the frontier" true
    (List.equal Int.equal l (batch @ rest));
  let all, none = Rewrite.split_batch (n + 1) l in
  Alcotest.(check bool) "oversized batch takes everything" true
    (List.equal Int.equal l all && none = []);
  let empty, everything = Rewrite.split_batch 0 l in
  Alcotest.(check bool) "zero batch defers everything" true
    (empty = [] && List.equal Int.equal l everything)

(* ------------------------------------------------------------------ *)
(* Rewriting vs chase: the Theorem 1 equivalence, on random instances  *)
(* ------------------------------------------------------------------ *)

let gen_edges = QCheck.Gen.(list_size (1 -- 6) (pair (0 -- 3) (0 -- 3)))

let fact_set_of_edges edges =
  Fact_set.of_list
    (List.map
       (fun (i, j) ->
         atom e [ c (Printf.sprintf "x%d" i); c (Printf.sprintf "x%d" j) ])
       edges)

let prop_rewriting_agrees_with_chase_tp =
  QCheck.Test.make ~count:50 ~name:"rew(q) over D = chase entailment (T_p)"
    (QCheck.make gen_edges) (fun edges ->
      let d = fact_set_of_edges edges in
      let _, _, q3 = Theories.Zoo.e_path_query 3 in
      let q = Cq.make ~free:[] (Cq.atoms q3) in
      Bdd.rewriting_certifies ~max_depth:8 Theories.Zoo.t_p q [ d ])

let prop_rewriting_agrees_with_chase_loopcut =
  QCheck.Test.make ~count:50
    ~name:"rew(q) over D = chase entailment (T_loopcut)"
    (QCheck.make gen_edges) (fun edges ->
      let d = fact_set_of_edges edges in
      let x = v "x" in
      let q = Cq.make ~free:[] [ atom e [ x; x ] ] in
      Bdd.rewriting_certifies ~max_depth:8 Theories.Zoo.t_loopcut q [ d ])

let prop_rewriting_agrees_with_chase_ta_answers =
  QCheck.Test.make ~count:30
    ~name:"rew(q) with answers = chase entailment (T_a)"
    (QCheck.make QCheck.Gen.(list_size (1 -- 4) (0 -- 3)))
    (fun humans ->
      let d =
        Fact_set.of_list
          (List.map
             (fun i -> atom Theories.Zoo.human [ c (Printf.sprintf "h%d" i) ])
             humans)
      in
      let x = v "x" and y = v "y" in
      let q = Cq.make ~free:[ x ] [ atom Theories.Zoo.mother [ x; y ] ] in
      Bdd.rewriting_certifies ~max_depth:6 Theories.Zoo.t_a q [ d ])

let test_backward_shy () =
  (* Sticky theories are backward shy (footnote 30): the rewriting of the
     atomic query has no repeated bound variable. *)
  let x = v "x" in
  let q =
    Cq.make ~free:[ x ]
      [ atom Theories.Zoo.e4 [ x; v "b1"; v "b2"; v "t" ] ]
  in
  let r = Rewrite.rewrite Theories.Zoo.t_sticky q in
  Alcotest.(check bool) "complete" true (r.Rewrite.outcome = Rewrite.Complete);
  Alcotest.(check bool) "sticky rewriting backward shy" true
    (Bdd.backward_shy_rewriting q r.Rewrite.ucq);
  (* T_d's rewriting of phi_R^2 is NOT backward shy: the G^4 disjunct has
     repeated interior variables. *)
  let _, _, phi2 = Theories.Zoo.phi_r 2 in
  let res = Marked.Process.rewrite_td phi2 in
  Alcotest.(check bool) "T_d rewriting not backward shy" false
    (Bdd.backward_shy_rewriting phi2 res.Marked.Process.rewriting);
  (* Sanity of the repeated-bound-variables detector itself. *)
  let y = v "y" and m = v "mrb" in
  let path2 = Cq.make ~free:[ x; y ] [ atom e [ x; m ]; atom e [ m; y ] ] in
  Alcotest.(check int) "m repeats" 1
    (List.length (Bdd.repeated_bound_vars path2))

(* ------------------------------------------------------------------ *)
(* Single-head compilation                                             *)
(* ------------------------------------------------------------------ *)

let test_single_head_compile () =
  let compiled, aux = Single_head.compile Theories.Zoo.t_d in
  Alcotest.(check int) "9 rules (3 per multi-head rule)" 9
    (List.length (Theory.rules compiled));
  Alcotest.(check int) "3 aux predicates" 3 (Symbol.Set.cardinal aux);
  Alcotest.(check bool) "all single-head" true (Theory.is_single_head compiled)

let test_single_head_chase_equivalent () =
  (* The compiled chase entails the same boolean queries over the original
     signature (with a depth factor of 2). *)
  let compiled, _ = Single_head.compile Theories.Zoo.t_d in
  let _, _, d = Theories.Instances.path Theories.Zoo.g2 2 in
  let run_orig = Chase.Engine.run ~max_depth:3 ~max_atoms:20_000 Theories.Zoo.t_d d in
  let run_comp = Chase.Engine.run ~max_depth:6 ~max_atoms:40_000 compiled d in
  let queries =
    [
      (let x = v "x" and y = v "y" and z = v "z" in
       Cq.make ~free:[]
         [ atom Theories.Zoo.r2 [ x; y ]; atom Theories.Zoo.g2 [ y; z ] ]);
      (let x = v "x" in Cq.make ~free:[] [ atom Theories.Zoo.r2 [ x; x ] ]);
      (let x = v "x" and y = v "y" in
       Cq.make ~free:[]
         [ atom Theories.Zoo.r2 [ x; y ]; atom Theories.Zoo.r2 [ y; x ] ]);
    ]
  in
  List.iter
    (fun q ->
      let orig = Cq.boolean_holds q (Chase.Engine.stage run_orig 2) in
      let comp = Cq.boolean_holds q (Chase.Engine.stage run_comp 4) in
      Alcotest.(check bool) "same boolean answer" orig comp)
    queries

(* ------------------------------------------------------------------ *)
(* Locality analyzers                                                  *)
(* ------------------------------------------------------------------ *)

let test_subsets_up_to () =
  Alcotest.(check int) "subsets of 4 up to 2" 10
    (List.length (Locality.subsets_up_to 2 [ 1; 2; 3; 4 ]));
  Alcotest.(check int) "subsets of 3 up to 3" 7
    (List.length (Locality.subsets_up_to 3 [ 1; 2; 3 ]))

let test_tp_is_local () =
  (* Linear theories are local with constant 1 (Section 7). *)
  let _, _, d = Theories.Instances.path e 4 in
  Alcotest.(check (list string)) "no defects at l=1" []
    (List.map (Fmt.str "%a" Atom.pp)
       (Locality.defects ~depth:3 Theories.Zoo.t_p d ~l:1));
  Alcotest.(check (option int)) "min constant 1" (Some 1)
    (Locality.min_constant ~depth:3 Theories.Zoo.t_p d ~max_l:3)

let test_sticky_star_not_local () =
  (* Example 39: the star with k colours demands locality constant k+1. *)
  let star = Theories.Instances.sticky_star 3 in
  Alcotest.(check bool) "defects at l=3" true
    (Locality.defects ~depth:3 Theories.Zoo.t_sticky star ~l:3 <> []);
  Alcotest.(check (option int)) "min constant = 4" (Some 4)
    (Locality.min_constant ~depth:3 Theories.Zoo.t_sticky star ~max_l:5)

let test_tc_cycle_needs_everything () =
  (* Example 42: on the n-cycle, some chase atom requires all n facts. *)
  let n = 4 in
  let cyc = Theories.Instances.cycle e n in
  match Locality.max_support ~depth:n ~sub_depth:n Theories.Zoo.t_c cyc with
  | Some s -> Alcotest.(check int) "support = n" n s
  | None -> Alcotest.fail "support should be computable"

(* ------------------------------------------------------------------ *)
(* Distancing                                                          *)
(* ------------------------------------------------------------------ *)

let test_td_contracts_distances () =
  (* On G^8, the endpoints are at distance 8 in D but reachable in ~6 steps
     in the chase via the doubling grid: contraction ratio > 1 (on shorter
     paths the detour through R-levels is still longer than the path). *)
  let _, _, d = Theories.Instances.path Theories.Zoo.g2 8 in
  let run = Chase.Engine.run ~max_depth:6 ~max_atoms:100_000 Theories.Zoo.t_d d in
  match Distancing.max_contraction run with
  | Some (_, ratio) ->
      Alcotest.(check bool) "contraction observed" true (ratio > 1.0)
  | None -> Alcotest.fail "pairs should be connected in the chase"

let test_tp_does_not_contract () =
  let _, _, d = Theories.Instances.path e 5 in
  let run = Chase.Engine.run ~max_depth:5 Theories.Zoo.t_p d in
  match Distancing.max_contraction run with
  | Some (_, ratio) ->
      Alcotest.(check bool) "no contraction for linear" true (ratio <= 1.0)
  | None -> Alcotest.fail "path is connected"

let () =
  Alcotest.run "rewriting"
    [
      ( "piece_unifier",
        [
          Alcotest.test_case "atomic free query" `Quick test_atomic_query_tp;
          Alcotest.test_case "boolean edge" `Quick test_boolean_edge_tp;
          Alcotest.test_case "separating variable" `Quick
            test_separating_variable_blocked;
        ] );
      ( "saturation",
        [
          Alcotest.test_case "rew under T_a" `Quick test_rew_ta_mother;
          Alcotest.test_case "selfloop under T_loopcut" `Quick
            test_rew_selfloop_loopcut;
          Alcotest.test_case "rs linear for T_p" `Quick test_rs_linear_growth;
          Alcotest.test_case "example 41 diverges" `Quick test_nonbdd_diverges;
          Alcotest.test_case "split_batch on a huge frontier" `Quick
            test_split_batch_large_frontier;
          Alcotest.test_case "example 28 ladder" `Quick
            test_e28_completes_with_growing_rew;
          Alcotest.test_case "backward shy (footnote 30)" `Quick
            test_backward_shy;
        ] );
      ( "chase agreement",
        [
          QCheck_alcotest.to_alcotest prop_rewriting_agrees_with_chase_tp;
          QCheck_alcotest.to_alcotest prop_rewriting_agrees_with_chase_loopcut;
          QCheck_alcotest.to_alcotest
            prop_rewriting_agrees_with_chase_ta_answers;
        ] );
      ( "single_head",
        [
          Alcotest.test_case "compile shape" `Quick test_single_head_compile;
          Alcotest.test_case "chase equivalence" `Quick
            test_single_head_chase_equivalent;
        ] );
      ( "locality",
        [
          Alcotest.test_case "subsets" `Quick test_subsets_up_to;
          Alcotest.test_case "T_p local" `Quick test_tp_is_local;
          Alcotest.test_case "sticky star not local" `Quick
            test_sticky_star_not_local;
          Alcotest.test_case "T_c needs the whole cycle" `Quick
            test_tc_cycle_needs_everything;
        ] );
      ( "distancing",
        [
          Alcotest.test_case "T_d contracts" `Quick test_td_contracts_distances;
          Alcotest.test_case "T_p does not" `Quick test_tp_does_not_contract;
        ] );
    ]

(* The portfolio suite: checker units (loop-restricted rules, rewriter
   compatibility, T_d-shape detection, the BDD probe), plan/execute
   round-trips on zoo workhorses, minimizer convergence against a
   deliberately wrong oracle, .repro round-trips, and a seeded fuzz
   smoke campaign (FRONTIER_FUZZ_COUNT scales it; default 60). *)

open Logic
module Checkers = Portfolio.Checkers
module Strategy = Portfolio.Strategy
module Minimize = Portfolio.Minimize
module Repro = Portfolio.Repro
module Fuzz = Portfolio.Fuzz

let fuzz_count =
  match Sys.getenv_opt "FRONTIER_FUZZ_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 60)
  | None -> 60

let theory_of rules = Theory.make ~name:"t" rules

(* ------------------------------------------------------------------ *)
(* Loop-restricted rules                                               *)
(* ------------------------------------------------------------------ *)

let e = Theories.Zoo.e2
let x = Term.var "x"
let y = Term.var "y"
let z = Term.var "z"

let symmetric =
  Tgd.make ~name:"sym" ~body:[ Atom.make e [ x; y ] ]
    ~head:[ Atom.make e [ y; x ] ]
    ()

let transitive =
  Tgd.make ~name:"trans"
    ~body:[ Atom.make e [ x; y ]; Atom.make e [ y; z ] ]
    ~head:[ Atom.make e [ x; z ] ]
    ()

let test_loop_restricted_accepts_linear_datalog_cycles () =
  let v = Checkers.loop_restricted (theory_of [ symmetric ]) in
  Alcotest.(check bool) "symmetric closure accepted" true v.Checkers.loop_restricted;
  Alcotest.(check (list string)) "the self-loop is reported" [ "sym" ]
    v.Checkers.cyclic_rules

let test_loop_restricted_rejects_joins_on_cycles () =
  let v = Checkers.loop_restricted (theory_of [ transitive ]) in
  Alcotest.(check bool) "transitivity rejected" false v.Checkers.loop_restricted;
  Alcotest.(check (list string)) "offender named" [ "trans" ] v.Checkers.offenders

let test_loop_restricted_rejects_existential_cycles () =
  (* T_p's rule E(x,y) -> exists z. E(y,z) feeds itself and invents. *)
  let v = Checkers.loop_restricted Theories.Zoo.t_p in
  Alcotest.(check bool) "t_p rejected" false v.Checkers.loop_restricted;
  Alcotest.(check bool) "it has offenders" true (v.Checkers.offenders <> [])

let test_loop_restricted_off_cycle_existentials_are_fine () =
  (* An acyclic existential feeding a cyclic linear Datalog core. *)
  let mother = Theories.Zoo.mother and human = Theories.Zoo.human in
  let feed =
    Tgd.make ~name:"feed" ~body:[ Atom.make human [ x ] ]
      ~head:[ Atom.make mother [ x; z ] ]
      ()
  in
  let swap =
    Tgd.make ~name:"swap" ~body:[ Atom.make mother [ x; y ] ]
      ~head:[ Atom.make mother [ y; x ] ]
      ()
  in
  let v = Checkers.loop_restricted (theory_of [ feed; swap ]) in
  Alcotest.(check bool) "accepted" true v.Checkers.loop_restricted;
  Alcotest.(check (list string)) "only the swap rule cycles" [ "swap" ]
    v.Checkers.cyclic_rules

let test_generated_loop_restricted_theories_pass () =
  List.iter
    (fun seed ->
      let t =
        Theories.Generators.random_loop_restricted ~seed ~rels:3 ~rules:5
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d loop-restricted" seed)
        true
        (Checkers.loop_restricted t).Checkers.loop_restricted)
    [ 1; 2; 3; 7; 42 ]

(* ------------------------------------------------------------------ *)
(* Rewriter compatibility and T_d shape                                *)
(* ------------------------------------------------------------------ *)

let test_rewriter_compatible () =
  Alcotest.(check bool) "t_a compatible" true
    (Checkers.rewriter_compatible Theories.Zoo.t_a);
  (* T_d's (loop) has an empty body and (pins) has a domain variable:
     the piece rewriter skips both, so Complete is no certificate. *)
  Alcotest.(check bool) "t_d not compatible" false
    (Checkers.rewriter_compatible Theories.Zoo.t_d);
  Alcotest.(check bool) "t_sticky compatible" true
    (Checkers.rewriter_compatible Theories.Zoo.t_sticky)

let renamed_td =
  (* T_d with every variable renamed: the canonical key must not care. *)
  let xx = Term.var "xx" and uu = Term.var "uu" and vv = Term.var "vv" in
  let ww = Term.var "ww" and qq = Term.var "qq" in
  let r2 = Theories.Zoo.r2 and g2 = Theories.Zoo.g2 in
  Theory.make ~name:"T_d_renamed"
    [
      Tgd.make ~name:"l" ~body:[]
        ~head:[ Atom.make r2 [ xx; xx ]; Atom.make g2 [ xx; xx ] ]
        ();
      Tgd.make ~name:"p" ~dom_vars:[ xx ] ~body:[]
        ~head:[ Atom.make r2 [ xx; uu ]; Atom.make g2 [ xx; vv ] ]
        ();
      Tgd.make ~name:"g"
        ~body:
          [
            Atom.make r2 [ xx; uu ]; Atom.make g2 [ xx; ww ];
            Atom.make g2 [ ww; qq ];
          ]
        ~head:[ Atom.make r2 [ qq; vv ]; Atom.make g2 [ uu; vv ] ]
        ();
    ]

let test_td_shape () =
  let shape t = Checkers.td_shape t in
  (match shape Theories.Zoo.t_d with
  | Some Checkers.Td -> ()
  | _ -> Alcotest.fail "t_d must match the Td shape");
  (match shape renamed_td with
  | Some Checkers.Td -> ()
  | _ -> Alcotest.fail "variable renaming must not break shape detection");
  (match shape (Theories.Zoo.t_dk 3) with
  | Some (Checkers.Tdk 3) -> ()
  | _ -> Alcotest.fail "t_dk 3 must match Tdk 3");
  Alcotest.(check bool) "t_d_noloop is not T_d" true
    (shape Theories.Zoo.t_d_noloop = None);
  Alcotest.(check bool) "t_a is not T_d" true (shape Theories.Zoo.t_a = None)

let test_bdd_probe () =
  let p = Checkers.bdd_probe Theories.Zoo.t_a in
  Alcotest.(check bool) "t_a atomic queries certified" true p.Checkers.certified;
  (* Example 41 is the paper's non-BDD theory: the probe must not
     certify it (its atomic rewriting diverges into the budget). *)
  let np = Checkers.bdd_probe Theories.Zoo.t_nonbdd in
  Alcotest.(check bool) "t_nonbdd not certified" false np.Checkers.certified

(* ------------------------------------------------------------------ *)
(* plan / execute                                                      *)
(* ------------------------------------------------------------------ *)

let mother_query =
  let m = Term.var "m" in
  Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.mother [ x; m ] ]

let test_plan_and_execute_t_a () =
  let plan = Portfolio.plan Theories.Zoo.t_a in
  Alcotest.(check bool) "t_a routes to rewriting" true
    (plan.Strategy.strategy = Portfolio.Ucq_rewriting);
  Alcotest.(check bool) "linear is among the reasons" true
    (List.mem "linear" plan.Strategy.reasons);
  let d = Theories.Instances.human_abel in
  let a = Portfolio.execute plan Theories.Zoo.t_a d mother_query in
  Alcotest.(check bool) "exact" true a.Strategy.exact;
  Alcotest.(check bool) "no fallback" false a.Strategy.fell_back;
  Alcotest.(check bool) "used rewriting" true
    (a.Strategy.used = Portfolio.Ucq_rewriting);
  Alcotest.(check bool) "answer is Abel" true
    (Strategy.equal_answers a.Strategy.tuples [ [ Term.const "Abel" ] ])

let test_plan_and_execute_t_d () =
  let plan = Portfolio.plan renamed_td in
  Alcotest.(check bool) "renamed T_d routes to the marked process" true
    (plan.Strategy.strategy = Portfolio.Marked_process 2);
  let a0, a2, d = Theories.Instances.path Theories.Zoo.g2 2 in
  let _, _, phi1 = Theories.Zoo.phi_r 1 in
  let a = Portfolio.execute plan renamed_td d phi1 in
  Alcotest.(check bool) "exact" true a.Strategy.exact;
  Alcotest.(check bool) "marked process used" true
    (a.Strategy.used = Portfolio.Marked_process 2);
  Alcotest.(check bool) "phi_R^1(a0,a2) among the answers" true
    (List.exists
       (fun tuple -> List.compare Term.compare tuple [ a0; a2 ] = 0)
       a.Strategy.tuples);
  (* The truncated chase is sound but incomplete on T_d, so every tuple
     it derives must appear among the marked process's exact answers. *)
  let chase, chase_exact, _ =
    Strategy.chase_arm ~max_depth:4 ~max_atoms:100_000 Theories.Zoo.t_d d phi1
  in
  Alcotest.(check bool) "chase arm cannot saturate T_d" false chase_exact;
  List.iter
    (fun tuple ->
      Alcotest.(check bool) "chase-derived answer confirmed by marked arm" true
        (List.exists
           (fun t' -> List.compare Term.compare tuple t' = 0)
           a.Strategy.tuples))
    chase

let test_execute_falls_back_on_budget () =
  (* A starved rewriting budget must not produce wrong answers: execute
     detects the incomplete outcome and falls back to the chase. *)
  let plan = Portfolio.plan Theories.Zoo.t_a in
  let budget =
    { Rewriting.Rewrite.max_disjuncts = 1; max_atoms_per_disjunct = 1;
      max_steps = 1 }
  in
  let d = Theories.Instances.human_abel in
  let a = Portfolio.execute ~budget plan Theories.Zoo.t_a d mother_query in
  Alcotest.(check bool) "fell back" true a.Strategy.fell_back;
  Alcotest.(check bool) "budgeted chase took over" true
    (a.Strategy.used = Portfolio.Budgeted_chase);
  Alcotest.(check bool) "two attempts recorded" true
    (List.length a.Strategy.attempts = 2);
  Alcotest.(check bool) "still the right answer" true
    (Strategy.equal_answers a.Strategy.tuples [ [ Term.const "Abel" ] ])

let test_plan_never_unsound_on_generated_theories () =
  (* The routing invariant on all six generator families: whatever plan
     says, the evidence it cites must actually hold. *)
  List.iter
    (fun i ->
      let s = Fuzz.sample ~seed:3 i in
      let t = s.Fuzz.triple.Minimize.theory in
      let plan = Portfolio.plan t in
      let r = plan.Strategy.report in
      let ok =
        match plan.Strategy.strategy with
        | Portfolio.Ucq_rewriting ->
            r.Checkers.rewriter_ok
            && (r.Checkers.classes.Theories.Classes.linear
               || r.Checkers.classes.Theories.Classes.sticky
               || r.Checkers.loops.Checkers.loop_restricted)
        | Portfolio.Marked_process _ -> r.Checkers.td <> None
        | Portfolio.Terminating_chase ->
            r.Checkers.classes.Theories.Classes.datalog
            || r.Checkers.classes.Theories.Classes.weakly_acyclic
        | Portfolio.Budgeted_chase -> true
      in
      Alcotest.(check bool)
        (Printf.sprintf "sample %d (%s) routed soundly" i
           (Fuzz.family_name s.Fuzz.family))
        true ok)
    (List.init 24 Fun.id)

(* ------------------------------------------------------------------ *)
(* Minimizer                                                           *)
(* ------------------------------------------------------------------ *)

let test_minimizer_against_wrong_oracle () =
  (* Inject a deliberately wrong reference oracle that answers "no"
     always; the disagreement persists exactly while the chase still
     derives the query, and the shrinker must drive the triple down to
     <= 3 rules and <= 6 facts. *)
  let junk name rel =
    Tgd.make ~name ~body:[ Atom.make rel [ x; y ] ]
      ~head:[ Atom.make rel [ y; x ] ]
      ()
  in
  let theory =
    theory_of
      [
        symmetric; transitive; junk "j1" Theories.Zoo.r2;
        junk "j2" Theories.Zoo.g2; junk "j3" Theories.Zoo.knows;
      ]
  in
  let _, _, instance = Theories.Instances.path e 8 in
  let query =
    Cq.make ~free:[]
      [ Atom.make e [ Term.var "u"; Term.var "v" ];
        Atom.make e [ Term.var "v"; Term.var "w" ] ]
  in
  let wrong_oracle _ _ _ = [] in
  let keep t d q =
    let answers, exact, _ = Strategy.chase_arm ~max_depth:6 t d q in
    exact && not (Strategy.equal_answers answers (wrong_oracle t d q))
  in
  let triple = { Minimize.theory; instance; query } in
  Alcotest.(check bool) "disagreement holds on the seed triple" true
    (keep theory instance query);
  let min = Minimize.minimize ~keep triple in
  let rules, facts, atoms = Minimize.size min in
  Alcotest.(check bool) "minimized to <= 3 rules" true (rules <= 3);
  Alcotest.(check bool) "minimized to <= 6 facts" true (facts <= 6);
  Alcotest.(check bool) "query did not grow" true (atoms <= Cq.size query);
  Alcotest.(check bool) "disagreement survives minimization" true
    (keep min.Minimize.theory min.Minimize.instance min.Minimize.query);
  (* 1-minimality on facts: dropping any one loses the disagreement
     (a boolean one-atom query needs exactly its matching fact). *)
  Alcotest.(check int) "one fact suffices" 1 facts

let test_minimizer_returns_input_when_keep_fails () =
  let triple =
    {
      Minimize.theory = theory_of [ symmetric ];
      instance = Fact_set.of_list [ Atom.make e [ Term.const "a"; Term.const "b" ] ];
      query = Cq.make ~free:[] [ Atom.make e [ x; y ] ];
    }
  in
  let min = Minimize.minimize ~keep:(fun _ _ _ -> false) triple in
  Alcotest.(check bool) "unchanged" true
    (Minimize.size min = Minimize.size triple)

(* ------------------------------------------------------------------ *)
(* Repro round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let test_repro_roundtrip_on_samples () =
  List.iter
    (fun i ->
      let s = Fuzz.sample ~seed:9 i in
      let repro =
        { Repro.triple = s.Fuzz.triple; meta = [ ("seed", "9") ] }
      in
      let back = Repro.parse (Repro.render repro) in
      let t0 = s.Fuzz.triple and t1 = back.Repro.triple in
      Alcotest.(check int)
        (Printf.sprintf "sample %d rule count" i)
        (List.length (Theory.rules t0.Minimize.theory))
        (List.length (Theory.rules t1.Minimize.theory));
      Alcotest.(check bool)
        (Printf.sprintf "sample %d instance" i)
        true
        (Fact_set.equal t0.Minimize.instance t1.Minimize.instance);
      Alcotest.(check bool)
        (Printf.sprintf "sample %d meta" i)
        true
        (back.Repro.meta = [ ("seed", "9") ]);
      (* Semantics preserved: the chase arm answers identically. *)
      let a0, _, _ =
        Strategy.chase_arm ~max_depth:8 t0.Minimize.theory t0.Minimize.instance
          t0.Minimize.query
      in
      let a1, _, _ =
        Strategy.chase_arm ~max_depth:8 t1.Minimize.theory t1.Minimize.instance
          t1.Minimize.query
      in
      Alcotest.(check bool)
        (Printf.sprintf "sample %d answers" i)
        true
        (Strategy.equal_answers a0 a1))
    (List.init 6 Fun.id)

let test_repro_quotes_constants () =
  (* Constants in rules and queries must round-trip through quoting
     (bare identifiers in rule position parse as variables). *)
  let c = Term.const "joint" in
  let theory =
    theory_of
      [
        Tgd.make ~name:"k0"
          ~body:[ Atom.make e [ x; c ] ]
          ~head:[ Atom.make Theories.Zoo.r2 [ x; c ] ]
          ();
      ]
  in
  let triple =
    {
      Minimize.theory;
      instance = Fact_set.of_list [ Atom.make e [ Term.const "a"; c ] ];
      query = Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.r2 [ x; c ] ];
    }
  in
  let rendered = Repro.render { Repro.triple; meta = [] } in
  let back = Repro.parse rendered in
  Alcotest.(check string) "stable under re-rendering" rendered
    (Repro.render { back with Repro.meta = [] });
  let a, _, _ =
    Strategy.chase_arm ~max_depth:2 back.Repro.triple.Minimize.theory
      back.Repro.triple.Minimize.instance back.Repro.triple.Minimize.query
  in
  Alcotest.(check bool) "constant survived as a constant" true
    (Strategy.equal_answers a [ [ Term.const "a" ] ])

(* ------------------------------------------------------------------ *)
(* Fuzz campaign smoke                                                 *)
(* ------------------------------------------------------------------ *)

let test_sample_determinism () =
  List.iter
    (fun i ->
      let show s =
        Fmt.str "%a|%a|%a" Theory.pp s.Fuzz.triple.Minimize.theory
          Fact_set.pp s.Fuzz.triple.Minimize.instance Cq.pp
          s.Fuzz.triple.Minimize.query
      in
      Alcotest.(check string)
        (Printf.sprintf "sample %d replays" i)
        (show (Fuzz.sample ~seed:5 i))
        (show (Fuzz.sample ~seed:5 i)))
    (List.init 12 Fun.id)

let test_campaign_zero_failures () =
  let outcome = Fuzz.campaign ~seed:42 ~count:fuzz_count () in
  Alcotest.(check int) "all samples ran" fuzz_count outcome.Fuzz.samples;
  Alcotest.(check int) "zero disagreements" 0
    (List.length outcome.Fuzz.failures);
  Alcotest.(check int) "every sample accounted for" fuzz_count
    (outcome.Fuzz.agreed + outcome.Fuzz.single_arm);
  (* The per-strategy tally covers every sample too. *)
  Alcotest.(check int) "strategy tally" fuzz_count
    (List.fold_left (fun acc (_, n) -> acc + n) 0 outcome.Fuzz.by_strategy)

let test_campaign_writes_minimized_repro () =
  (* Force a failure through a guard-free raising arm? No: instead run
     the minimizer + repro path directly, as the campaign would, and
     check the file lands where the campaign promises. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "frontier-fuzz-test" in
  let s = Fuzz.sample ~seed:3 1 in
  let failure =
    {
      Fuzz.sample = s;
      arms = [];
      error = Some "synthetic";
      minimized = s.Fuzz.triple;
      repro_path = None;
    }
  in
  let failure =
    Fuzz.write_repro ~dir:(Some dir) ~seed:3 failure [ ("kind", "synthetic") ]
  in
  match failure.Fuzz.repro_path with
  | None -> Alcotest.fail "repro path must be set"
  | Some path ->
      Alcotest.(check bool) "file exists" true (Sys.file_exists path);
      let loaded = Repro.load path in
      Alcotest.(check bool) "parses back" true
        (Fact_set.equal loaded.Repro.triple.Minimize.instance
           s.Fuzz.triple.Minimize.instance);
      Sys.remove path

let () =
  Alcotest.run "portfolio"
    [
      ( "checkers",
        [
          Alcotest.test_case "loop-restricted accepts linear datalog cycles"
            `Quick test_loop_restricted_accepts_linear_datalog_cycles;
          Alcotest.test_case "loop-restricted rejects joins on cycles" `Quick
            test_loop_restricted_rejects_joins_on_cycles;
          Alcotest.test_case "loop-restricted rejects existential cycles"
            `Quick test_loop_restricted_rejects_existential_cycles;
          Alcotest.test_case "off-cycle existentials are fine" `Quick
            test_loop_restricted_off_cycle_existentials_are_fine;
          Alcotest.test_case "generated loop-restricted theories pass" `Quick
            test_generated_loop_restricted_theories_pass;
          Alcotest.test_case "rewriter compatibility" `Quick
            test_rewriter_compatible;
          Alcotest.test_case "T_d shape detection" `Quick test_td_shape;
          Alcotest.test_case "bdd probe" `Quick test_bdd_probe;
        ] );
      ( "selector",
        [
          Alcotest.test_case "plan+execute T_a" `Quick test_plan_and_execute_t_a;
          Alcotest.test_case "plan+execute renamed T_d" `Quick
            test_plan_and_execute_t_d;
          Alcotest.test_case "starved budget falls back" `Quick
            test_execute_falls_back_on_budget;
          Alcotest.test_case "routing is sound on generated theories" `Quick
            test_plan_never_unsound_on_generated_theories;
        ] );
      ( "minimizer",
        [
          Alcotest.test_case "wrong oracle converges small" `Quick
            test_minimizer_against_wrong_oracle;
          Alcotest.test_case "keep-fails returns input" `Quick
            test_minimizer_returns_input_when_keep_fails;
        ] );
      ( "repro",
        [
          Alcotest.test_case "sample round-trips" `Quick
            test_repro_roundtrip_on_samples;
          Alcotest.test_case "constants are quoted" `Quick
            test_repro_quotes_constants;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "samples are deterministic" `Quick
            test_sample_determinism;
          Alcotest.test_case "seeded campaign has zero failures" `Quick
            test_campaign_zero_failures;
          Alcotest.test_case "failures write minimized repros" `Quick
            test_campaign_writes_minimized_repro;
        ] );
    ]

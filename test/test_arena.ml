(* Unit tests for the flat atom arena and the arena-mode fact-set index:
   interning (hash-consing, growth past the initial capacity), span
   decoding, the [to_atom] bounds contract, and the posting-list paths
   behind [Fact_set.iter_join_candidates] — empty and singleton postings,
   duplicate-position atoms like R(a,a), and the merge-intersection of
   two sorted postings. The cross-engine differential properties (arena
   vs boxed chase/rewriting on random theories) live in
   test_properties.ml; these tests pin the data structure itself. *)

open Logic

let r2 = Symbol.make "AR_r2" ~arity:2
let s3 = Symbol.make "AR_s3" ~arity:3
let p1 = Symbol.make "AR_p1" ~arity:1
let c i = Term.const (Printf.sprintf "ar_c%d" i)

let atom_t = Alcotest.testable Atom.pp Atom.equal

let with_arena on f =
  let prev = Fact_set.arena_enabled () in
  Fact_set.set_arena on;
  Fun.protect ~finally:(fun () -> Fact_set.set_arena prev) f

(* ------------------------------------------------------------------ *)
(* Interning: hash-consing and span decoding                           *)
(* ------------------------------------------------------------------ *)

let test_intern_hash_consing () =
  let a = Arena.create ~initial:16 () in
  let at = Atom.make r2 [ c 1; c 2 ] in
  let id1 = Arena.intern a at in
  let id2 = Arena.intern a at in
  Alcotest.(check int) "same atom, same id" id1 id2;
  (* A structurally equal atom built separately interns to the same id
     (atom-level hash-consing over hash-consed terms). *)
  let id3 = Arena.intern a (Atom.make r2 [ c 1; c 2 ]) in
  Alcotest.(check int) "equal atom, same id" id1 id3;
  let id4 = Arena.intern a (Atom.make r2 [ c 2; c 1 ]) in
  Alcotest.(check bool) "different atom, different id" true (id1 <> id4);
  Alcotest.(check int) "two spans interned" 2 (Arena.spans a)

let test_span_decoding () =
  let a = Arena.create ~initial:4 () in
  let atoms =
    [
      Atom.make p1 [ c 0 ];
      Atom.make r2 [ c 1; c 1 ];
      Atom.make s3 [ c 1; c 2; c 3 ];
    ]
  in
  let ids = List.map (Arena.intern a) atoms in
  List.iter2
    (fun at id ->
      Alcotest.check atom_t "to_atom round-trips" at (Arena.to_atom a id);
      Alcotest.(check int)
        "rel_id is the relation's Symbol.id"
        (Symbol.id (Atom.rel at))
        (Arena.rel_id a id);
      Alcotest.(check int)
        "arity slot" (Symbol.arity (Atom.rel at)) (Arena.arity a id);
      List.iteri
        (fun pos t ->
          Alcotest.(check int)
            (Printf.sprintf "arg %d is the term id" pos)
            (Term.hash t) (Arena.arg a id pos))
        (Atom.args at))
    atoms ids;
  (* Spans are dense and contiguous: ints = sum of (2 + arity). *)
  Alcotest.(check int) "span storage" (3 + 4 + 5) (Arena.ints a);
  let st = Arena.stats a in
  Alcotest.(check int) "stats.spans" 3 st.Arena.spans;
  Alcotest.(check int) "stats.ints" 12 st.Arena.ints;
  Alcotest.(check bool) "stats.bytes covers the spans" true
    (st.Arena.bytes >= 12 * 8)

let test_growth_past_initial_capacity () =
  (* A tiny initial capacity forces both the span storage and the
     per-atom metadata through several doublings; every previously
     issued id must stay decodable afterwards. *)
  let a = Arena.create ~initial:4 () in
  let n = 2_000 in
  let mk i =
    if i mod 3 = 0 then Atom.make p1 [ c i ]
    else if i mod 3 = 1 then Atom.make r2 [ c i; c (i + 1) ]
    else Atom.make s3 [ c i; c (i + 1); c (i + 2) ]
  in
  let ids = List.init n (fun i -> (i, Arena.intern a (mk i))) in
  Alcotest.(check int) "all distinct atoms interned" n (Arena.spans a);
  List.iter
    (fun (i, id) ->
      Alcotest.check atom_t
        (Printf.sprintf "atom %d survives growth" i)
        (mk i) (Arena.to_atom a id))
    ids;
  (* Re-interning after growth still hash-conses. *)
  List.iter
    (fun (i, id) ->
      Alcotest.(check int) "stable id" id (Arena.intern a (mk i)))
    ids

let test_to_atom_bounds () =
  let a = Arena.create ~initial:4 () in
  let check_invalid id =
    match Arena.to_atom a id with
    | _ -> Alcotest.failf "to_atom %d on a 1-span arena should raise" id
    | exception Invalid_argument _ -> ()
  in
  check_invalid 0;
  ignore (Arena.intern a (Atom.make p1 [ c 0 ]));
  ignore (Arena.to_atom a 0);
  check_invalid 1;
  check_invalid (-1);
  check_invalid max_int

(* ------------------------------------------------------------------ *)
(* Posting lists through [Fact_set.iter_join_candidates]               *)
(* ------------------------------------------------------------------ *)

(* Emulate the compiled engine's caller-side re-check: visited rows are
   a superset of the candidates; filtering on the ids slab must land on
   exactly [Fact_set.candidates], in the same order. *)
let join_filtered t rel bound =
  let bound_pos = Array.make 8 0 and bound_ids = Array.make 8 0 in
  List.iteri
    (fun i (p, tm) ->
      bound_pos.(i) <- p;
      bound_ids.(i) <- Term.hash tm)
    bound;
  let nb = List.length bound in
  let seen = ref [] in
  Fact_set.iter_join_candidates t rel ~bound_pos ~bound_ids ~nb
    (fun atoms ids row ->
      let arity = Symbol.arity rel in
      let ok = ref true in
      for i = 0 to nb - 1 do
        if ids.((row * arity) + bound_pos.(i)) <> bound_ids.(i) then
          ok := false
      done;
      if !ok then seen := atoms.(row) :: !seen);
  List.rev !seen

let check_against_candidates msg t rel bound =
  Alcotest.(check (list atom_t))
    msg
    (Fact_set.candidates t rel ~bound)
    (join_filtered t rel bound)

let test_join_candidates_empty_and_singleton () =
  with_arena true (fun () ->
      let empty = Fact_set.of_list [] in
      Alcotest.(check (list atom_t))
        "empty set, no rows" []
        (join_filtered empty r2 [ (0, c 1) ]);
      let single = Fact_set.of_list [ Atom.make r2 [ c 1; c 2 ] ] in
      check_against_candidates "singleton, matching constraint" single r2
        [ (0, c 1) ];
      Alcotest.(check (list atom_t))
        "singleton, missing posting" []
        (join_filtered single r2 [ (0, c 9) ]);
      Alcotest.(check (list atom_t))
        "wrong relation" []
        (join_filtered single p1 [ (0, c 1) ]))

let test_join_candidates_duplicate_positions () =
  with_arena true (fun () ->
      (* R(a,a) exercises the duplicate-position posting dedup: the same
         row appears under (pos 0, a) and (pos 1, a), and a two-sided
         constraint on [a] intersects those postings. *)
      let a = c 10 and b = c 11 in
      let t =
        Fact_set.of_list
          [
            Atom.make r2 [ a; a ];
            Atom.make r2 [ a; b ];
            Atom.make r2 [ b; a ];
            Atom.make r2 [ b; b ];
          ]
      in
      check_against_candidates "R(a,a) via both positions" t r2
        [ (0, a); (1, a) ];
      check_against_candidates "R(a,b) mixed pair" t r2 [ (0, a); (1, b) ];
      check_against_candidates "single constraint, duplicate rows once" t r2
        [ (1, a) ];
      (* Each surviving row must be visited exactly once. *)
      let rows = join_filtered t r2 [ (0, a); (1, a) ] in
      Alcotest.(check int) "no double visit" 1 (List.length rows))

let test_join_candidates_intersection_path () =
  with_arena true (fun () ->
      (* Two large postings with a small intersection: enough rows on
         both sides to clear the merge-intersection threshold. *)
      let hub = c 100 in
      let left = List.init 40 (fun i -> Atom.make r2 [ hub; c (200 + i) ]) in
      let right = List.init 40 (fun i -> Atom.make r2 [ c (300 + i); hub ]) in
      let both = [ Atom.make r2 [ hub; hub ] ] in
      let t = Fact_set.of_list (left @ right @ both) in
      check_against_candidates "intersection of two long postings" t r2
        [ (0, hub); (1, hub) ];
      check_against_candidates "one-sided long posting" t r2 [ (0, hub) ];
      (* Three-column relation: constraints on the two smallest postings,
         third position re-checked by the caller. *)
      let t3 =
        Fact_set.of_list
          (List.init 30 (fun i -> Atom.make s3 [ hub; c i; hub ])
          @ [ Atom.make s3 [ hub; c 500; c 501 ] ])
      in
      check_against_candidates "arity-3, two constraints" t3 s3
        [ (0, hub); (2, hub) ];
      check_against_candidates "arity-3, all three bound" t3 s3
        [ (0, hub); (1, c 5); (2, hub) ])

let test_join_candidates_across_merged_layers () =
  with_arena true (fun () ->
      (* Incremental adds force LSM layer merges (max 4 layers); the
         postings of merged layers must still answer exactly. *)
      let t = ref Fact_set.empty in
      for i = 0 to 99 do
        t := Fact_set.add (Atom.make r2 [ c (i mod 7); c (i mod 5) ]) !t
      done;
      for x = 0 to 6 do
        check_against_candidates
          (Printf.sprintf "merged layers, x=%d" x)
          !t r2
          [ (0, c x) ]
      done;
      check_against_candidates "merged layers, both bound" !t r2
        [ (0, c 3); (1, c 3) ])

let test_boxed_and_arena_sets_agree () =
  (* The same construction sequence in boxed and arena modes yields
     equal sets with identical candidate answers — the non-random core
     of the QCheck differentials. *)
  let build () =
    let t = ref Fact_set.empty in
    for i = 0 to 49 do
      t := Fact_set.add (Atom.make r2 [ c (i mod 6); c (i mod 4) ]) !t
    done;
    t := Fact_set.union !t (Fact_set.of_list [ Atom.make p1 [ c 2 ] ]);
    !t
  in
  let boxed = with_arena false build in
  let arena = with_arena true build in
  Alcotest.(check bool) "sets equal" true (Fact_set.equal boxed arena);
  for x = 0 to 5 do
    Alcotest.(check (list atom_t))
      (Printf.sprintf "candidates agree, x=%d" x)
      (Fact_set.candidates boxed r2 ~bound:[ (0, c x) ])
      (Fact_set.candidates arena r2 ~bound:[ (0, c x) ])
  done

let () =
  Alcotest.run "arena"
    [
      ( "intern",
        [
          Alcotest.test_case "hash-consing" `Quick test_intern_hash_consing;
          Alcotest.test_case "span decoding" `Quick test_span_decoding;
          Alcotest.test_case "growth past initial capacity" `Quick
            test_growth_past_initial_capacity;
          Alcotest.test_case "to_atom bounds" `Quick test_to_atom_bounds;
        ] );
      ( "postings",
        [
          Alcotest.test_case "empty and singleton" `Quick
            test_join_candidates_empty_and_singleton;
          Alcotest.test_case "duplicate-position atoms" `Quick
            test_join_candidates_duplicate_positions;
          Alcotest.test_case "merge-intersection path" `Quick
            test_join_candidates_intersection_path;
          Alcotest.test_case "merged LSM layers" `Quick
            test_join_candidates_across_merged_layers;
          Alcotest.test_case "boxed and arena sets agree" `Quick
            test_boxed_and_arena_sets_agree;
        ] );
    ]

(* The executable-plan evaluation layer: plan compilation, leapfrog
   answers against the Cq reference, UCQ union dedup, the set_eval A/B
   toggle, the containment probe, guard integration (a tripped join
   returns a sound partial answer set), and the Match trigger rounds. *)

open Logic

let tuples = Alcotest.testable
    (Fmt.list ~sep:Fmt.semi (Fmt.list ~sep:Fmt.comma Term.pp))
    (fun a b -> List.compare (List.compare Term.compare) a b = 0)

let with_eval on f =
  let prev = Eval.eval_enabled () in
  Eval.set_eval on;
  Fun.protect ~finally:(fun () -> Eval.set_eval prev) f

let x = Term.var "x"
let y = Term.var "y"
let z = Term.var "z"

let test_plan_compiles () =
  let q =
    Cq.make ~free:[ x; y ]
      [ Atom.make Theories.Zoo.e2 [ x; z ]; Atom.make Theories.Zoo.e2 [ z; y ] ]
  in
  let p = Eval.Plan.compile q in
  Alcotest.(check bool) "compiled" true (Eval.Plan.compiled p);
  Alcotest.(check int) "order covers all vars" 3
    (List.length (Eval.Plan.order p));
  (* The order is connectivity-greedy: the shared variable z leads. *)
  (match Eval.Plan.order p with
  | first :: _ -> Alcotest.(check bool) "z first" true (Term.equal first z)
  | [] -> Alcotest.fail "empty order");
  Alcotest.(check bool) "pp smoke" true
    (String.length (Fmt.str "%a" Eval.Plan.pp p) > 0)

let test_answers_match_reference () =
  let grid = Theories.Instances.grid Theories.Zoo.r2 Theories.Zoo.g2
      ~width:9 ~height:7 in
  List.iter
    (fun (_, _, q) ->
      Alcotest.check tuples "grid answers" (Cq.answers q grid)
        (Eval.answers q grid))
    [
      Theories.Zoo.r_path_query 1;
      Theories.Zoo.r_path_query 3;
      Theories.Zoo.g_path_query 2;
    ];
  let er = Theories.Instances.erdos_renyi Theories.Zoo.e2 ~seed:3 ~nodes:40
      ~edges:300 in
  let tri =
    Cq.make ~free:[ x; y ]
      [
        Atom.make Theories.Zoo.e2 [ x; y ];
        Atom.make Theories.Zoo.e2 [ y; z ];
        Atom.make Theories.Zoo.e2 [ x; z ];
      ]
  in
  Alcotest.check tuples "triangles" (Cq.answers tri er) (Eval.answers tri er);
  (* Disconnected body: a cross product of components. *)
  let cross =
    Cq.make ~free:[ x; y ]
      [ Atom.make Theories.Zoo.r2 [ x; x ]; Atom.make Theories.Zoo.g2 [ y; y ] ]
  in
  let inst =
    Fact_set.of_list
      [
        Atom.make Theories.Zoo.r2 [ Term.const "a"; Term.const "a" ];
        Atom.make Theories.Zoo.r2 [ Term.const "b"; Term.const "b" ];
        Atom.make Theories.Zoo.g2 [ Term.const "c"; Term.const "c" ];
      ]
  in
  Alcotest.check tuples "cross product" (Cq.answers cross inst)
    (Eval.answers cross inst)

let test_holds_and_boolean () =
  let er = Theories.Instances.erdos_renyi Theories.Zoo.e2 ~seed:5 ~nodes:25
      ~edges:120 in
  let q =
    Cq.make ~free:[ x; y ]
      [ Atom.make Theories.Zoo.e2 [ x; z ]; Atom.make Theories.Zoo.e2 [ z; y ] ]
  in
  let all = Cq.answers q er in
  List.iter
    (fun tuple ->
      Alcotest.(check bool) "holds on answer" true (Eval.holds q er tuple))
    all;
  Alcotest.(check bool) "holds rejects non-answer"
    (Cq.holds q er [ Term.const "v0"; Term.const "v0" ])
    (Eval.holds q er [ Term.const "v0"; Term.const "v0" ]);
  let b = Cq.make ~free:[] [ Atom.make Theories.Zoo.e2 [ x; x ] ] in
  Alcotest.(check bool) "boolean agrees" (Cq.boolean_holds b er)
    (Eval.boolean_holds b er);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Eval.holds: answer tuple arity mismatch") (fun () ->
      ignore (Eval.holds q er [ Term.const "v0" ]))

let test_ucq_union_dedup () =
  let er = Theories.Instances.erdos_renyi Theories.Zoo.e2 ~seed:11 ~nodes:30
      ~edges:200 in
  (* Overlapping disjuncts: q1's answers are a superset of q2's. *)
  let q1 = Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.e2 [ x; y ] ] in
  let q2 =
    Cq.make ~free:[ x ]
      [ Atom.make Theories.Zoo.e2 [ x; y ]; Atom.make Theories.Zoo.e2 [ y; z ] ]
  in
  let u = Ucq.of_disjuncts_unchecked [ q1; q2 ] in
  let reference =
    List.sort_uniq
      (List.compare Term.compare)
      (Cq.answers q1 er @ Cq.answers q2 er)
  in
  Alcotest.check tuples "union answers" reference (Eval.ucq_answers u er);
  Alcotest.(check bool) "ucq boolean" true (Eval.ucq_boolean_holds u er);
  List.iter
    (fun tuple ->
      Alcotest.(check bool) "ucq holds" true (Eval.ucq_holds u er tuple))
    reference

let test_toggle_and_legacy_agree () =
  let ba = Theories.Instances.barabasi_albert Theories.Zoo.e2 ~seed:13
      ~nodes:40 ~m:3 in
  let q =
    Cq.make ~free:[ x; y ]
      [ Atom.make Theories.Zoo.e2 [ x; z ]; Atom.make Theories.Zoo.e2 [ y; z ] ]
  in
  let on = with_eval true (fun () -> Eval.answers q ba) in
  let off = with_eval false (fun () -> Eval.answers q ba) in
  Alcotest.check tuples "toggle equal" on off;
  Alcotest.check tuples "matches Cq" (Cq.answers q ba) on

let test_guard_partial_is_sound () =
  let er = Theories.Instances.erdos_renyi Theories.Zoo.e2 ~seed:17 ~nodes:60
      ~edges:900 in
  let q =
    Cq.make ~free:[ x; y ]
      [ Atom.make Theories.Zoo.e2 [ x; z ]; Atom.make Theories.Zoo.e2 [ z; y ] ]
  in
  let full = Eval.answers q er in
  Alcotest.(check bool) "workload is nontrivial" true
    (List.length full > 40);
  (* One fuel unit per emitted tuple: a tiny budget must trip. *)
  let guard = Guard.create ~fuel:25 () in
  (match Eval.answers_outcome ~guard q er with
  | Guard.Complete _ -> Alcotest.fail "expected a guard trip"
  | Guard.Exhausted { partial; cause; _ } ->
      Alcotest.(check bool) "fuel cause" true (cause = Guard.Fuel);
      Alcotest.(check bool) "partial nonempty" true (partial <> []);
      Alcotest.(check bool) "partial is strict" true
        (List.length partial < List.length full);
      List.iter
        (fun tuple ->
          Alcotest.(check bool) "partial tuple is a real answer" true
            (List.exists (fun t -> List.compare Term.compare t tuple = 0) full))
        partial);
  (* A cancelled guard trips through the seek-counter poll too. *)
  let cancel = Atomic.make true in
  let guard = Guard.create ~cancel () in
  (match Eval.answers_outcome ~guard q er with
  | Guard.Complete _ -> Alcotest.fail "expected cancellation"
  | Guard.Exhausted { partial; _ } ->
      List.iter
        (fun tuple ->
          Alcotest.(check bool) "cancelled partial sound" true
            (List.exists (fun t -> List.compare Term.compare t tuple = 0) full))
        partial)

let test_containment_probe_via_hook () =
  (* Containment runs through the registered probe when eval is linked
     and enabled; verdicts must not depend on the toggle. *)
  let q1 =
    Cq.make ~free:[ x ]
      [ Atom.make Theories.Zoo.e2 [ x; y ]; Atom.make Theories.Zoo.e2 [ y; z ] ]
  in
  let q2 = Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.e2 [ x; y ] ] in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "implies toggled"
        (with_eval false (fun () -> Containment.implies a b))
        (with_eval true (fun () -> Containment.implies a b)))
    [ (q1, q2); (q2, q1); (q1, q1) ]

let test_counters_move () =
  Eval.reset_counters ();
  let er = Theories.Instances.erdos_renyi Theories.Zoo.e2 ~seed:19 ~nodes:30
      ~edges:250 in
  let q =
    Cq.make ~free:[ x ]
      [ Atom.make Theories.Zoo.e2 [ x; y ]; Atom.make Theories.Zoo.e2 [ y; x ] ]
  in
  let answers = Eval.answers q er in
  let c = Eval.counters () in
  Alcotest.(check bool) "a plan ran" true (c.Eval.plans >= 1);
  Alcotest.(check bool) "seeks counted" true (c.Eval.seeks > 0);
  Alcotest.(check int) "emitted = distinct answers" (List.length answers)
    c.Eval.emitted

let test_match_trigger_rounds () =
  (* Eval.Match must reproduce the engine's semi-naive enumeration: the
     chase (which now routes through it) still saturates correctly. *)
  let rule =
    Tgd.make ~name:"succ"
      ~body:[ Atom.make Theories.Zoo.e2 [ x; y ] ]
      ~head:[ Atom.make Theories.Zoo.e2 [ y; z ] ]
      ()
  in
  let parts = Eval.Match.rule_parts rule ~old_is_empty:true in
  Alcotest.(check int) "one delta part per body atom" 1 (List.length parts);
  let _, _, d = Theories.Instances.path Theories.Zoo.e2 3 in
  let seen = ref 0 in
  List.iter
    (fun part ->
      Eval.Match.part_triggers rule part ~old_facts:(Fact_set.of_list [])
        ~delta:d ~full:d ~old_dom_list:[] ~new_dom_list:[] ~full_dom_list:[]
        (fun _ -> incr seen))
    parts;
  Alcotest.(check int) "one trigger per fact" 3 !seen

let () =
  Alcotest.run "eval"
    [
      ( "plans",
        [
          Alcotest.test_case "compile" `Quick test_plan_compiles;
          Alcotest.test_case "answers = reference" `Quick
            test_answers_match_reference;
          Alcotest.test_case "holds / boolean" `Quick test_holds_and_boolean;
          Alcotest.test_case "ucq union dedup" `Quick test_ucq_union_dedup;
          Alcotest.test_case "set_eval toggle" `Quick
            test_toggle_and_legacy_agree;
        ] );
      ( "guard",
        [
          Alcotest.test_case "partial answers are sound" `Quick
            test_guard_partial_is_sound;
        ] );
      ( "integration",
        [
          Alcotest.test_case "containment probe" `Quick
            test_containment_probe_via_hook;
          Alcotest.test_case "counters" `Quick test_counters_move;
          Alcotest.test_case "match rounds" `Quick test_match_trigger_rounds;
        ] );
    ]

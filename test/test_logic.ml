(* Tests for the logic substrate: terms, atoms, fact sets, Gaifman graphs,
   homomorphisms, CQs, containment, UCQs, TGDs and the parser. *)

open Logic

let sym name arity = Symbol.make name ~arity
let e = sym "E" 2
let r = sym "R" 2
let p = sym "P" 1
let c name = Term.const name
let v name = Term.var name
let atom = Atom.make

(* ------------------------------------------------------------------ *)
(* Terms                                                              *)
(* ------------------------------------------------------------------ *)

let test_hash_consing () =
  let t1 = Term.app "f" [ c "a"; c "b" ] in
  let t2 = Term.app "f" [ c "a"; c "b" ] in
  Alcotest.(check bool) "physically equal" true (t1 == t2);
  Alcotest.(check bool) "equal" true (Term.equal t1 t2);
  let t3 = Term.app "f" [ c "b"; c "a" ] in
  Alcotest.(check bool) "different args differ" false (Term.equal t1 t3);
  Alcotest.(check bool) "const vs var differ" false
    (Term.equal (c "x") (v "x"))

let test_term_measures () =
  let deep = Term.app "f" [ Term.app "f" [ c "a"; c "a" ]; c "a" ] in
  Alcotest.(check int) "depth" 2 (Term.depth deep);
  Alcotest.(check int) "dag size shares" 3 (Term.dag_size deep);
  Alcotest.(check int) "depth of const" 0 (Term.depth (c "a"))

let test_term_doubling_stays_small () =
  (* The T_d phenomenon: tree size doubles per level, DAG size is linear. *)
  let rec build n t = if n = 0 then t else build (n - 1) (Term.app "f" [ t; t ]) in
  let t = build 40 (c "a") in
  Alcotest.(check int) "dag size linear" 41 (Term.dag_size t);
  Alcotest.(check int) "depth" 40 (Term.depth t)

let test_subst () =
  let x = v "x" and y = v "y" in
  let t = Term.app "f" [ x; Term.app "g" [ y ] ] in
  let m = Term.subst_of_bindings [ (x, c "a"); (y, c "b") ] in
  let t' = Term.subst m t in
  Alcotest.(check bool) "ground after subst" true
    (Term.equal t' (Term.app "f" [ c "a"; Term.app "g" [ c "b" ] ]));
  Alcotest.(check bool) "identity subst preserves sharing" true
    (Term.subst Term.Int_map.empty t == t)

(* ------------------------------------------------------------------ *)
(* Atoms and fact sets                                                *)
(* ------------------------------------------------------------------ *)

let test_atom_arity_check () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Atom.make: E expects arity 2, got 1") (fun () ->
      ignore (atom e [ c "a" ]))

let test_fact_set_ops () =
  let f1 = atom e [ c "a"; c "b" ] and f2 = atom e [ c "b"; c "c" ] in
  let fs = Fact_set.of_list [ f1; f2; f1 ] in
  Alcotest.(check int) "dedup" 2 (Fact_set.cardinal fs);
  Alcotest.(check int) "domain" 3 (Term.Set.cardinal (Fact_set.domain fs));
  Alcotest.(check bool) "mem" true (Fact_set.mem f1 fs);
  Alcotest.(check int) "by_rel" 2 (List.length (Fact_set.by_rel fs e));
  Alcotest.(check int) "candidates bound" 1
    (List.length (Fact_set.candidates fs e ~bound:[ (0, c "a") ]));
  let restricted = Fact_set.restrict fs (Term.Set.of_list [ c "a"; c "b" ]) in
  Alcotest.(check int) "restrict bans c" 1 (Fact_set.cardinal restricted)

let test_position_index_term_id () =
  (* The (rel, position, term) index is keyed by the hash-consed term id,
     so a structurally equal Skolem term built independently must land in
     the same bucket, and structurally distinct terms must not alias. *)
  let s1 = Term.app "sk" [ c "a" ] in
  let s2 = Term.app "sk" [ c "b" ] in
  let f1 = atom e [ s1; c "x" ] and f2 = atom e [ s2; c "x" ] in
  let fs = Fact_set.of_list [ f1; f2 ] in
  let probe = Term.app "sk" [ c "a" ] in
  (match Fact_set.candidates fs e ~bound:[ (0, probe) ] with
  | [ f ] ->
      Alcotest.(check bool) "fresh copy of skolem key finds its fact" true
        (Atom.equal f f1)
  | l -> Alcotest.failf "expected one candidate, got %d" (List.length l));
  Alcotest.(check int) "other skolem key" 1
    (List.length (Fact_set.candidates fs e ~bound:[ (0, s2) ]));
  (* A term occurring only at another position must not match; neither may
     a variable spelled like a constant in the set. *)
  Alcotest.(check int) "term absent at position" 0
    (List.length (Fact_set.candidates fs e ~bound:[ (0, c "x") ]));
  Alcotest.(check int) "var does not alias const" 0
    (List.length (Fact_set.candidates fs e ~bound:[ (1, v "x") ]));
  Alcotest.(check int) "shared second position" 2
    (List.length (Fact_set.candidates fs e ~bound:[ (1, c "x") ]))

let test_candidates_multi_bound () =
  (* With several (position, term) constraints the index serves one as the
     lookup seed; the rest must still be enforced by filtering, whichever
     seed the selectivity heuristic picks. *)
  let t3 = sym "T" 3 in
  let f1 = atom t3 [ c "a"; c "b"; c "cc" ]
  and f2 = atom t3 [ c "a"; c "b"; c "d" ]
  and f3 = atom t3 [ c "a"; c "e"; c "cc" ]
  and f4 = atom t3 [ c "f"; c "b"; c "cc" ] in
  let fs = Fact_set.of_list [ f1; f2; f3; f4 ] in
  let check_bound name bound expected =
    let got = Fact_set.candidates fs t3 ~bound in
    Alcotest.(check int) (name ^ ": count") (List.length expected)
      (List.length got);
    List.iter
      (fun f ->
        Alcotest.(check bool) (name ^ ": member") true
          (List.exists (Atom.equal f) got))
      expected;
    (* [iter_candidates] must visit exactly the same atoms in the same
       order, without materializing the list. *)
    let via_iter = ref [] in
    Fact_set.iter_candidates fs t3 ~bound (fun f -> via_iter := f :: !via_iter);
    Alcotest.(check bool) (name ^ ": iter agrees") true
      (List.equal Atom.equal got (List.rev !via_iter))
  in
  check_bound "two bound" [ (0, c "a"); (1, c "b") ] [ f1; f2 ];
  check_bound "other pair" [ (1, c "b"); (2, c "cc") ] [ f1; f4 ];
  check_bound "all three bound" [ (0, c "a"); (1, c "b"); (2, c "cc") ] [ f1 ];
  check_bound "inconsistent bounds" [ (0, c "f"); (2, c "d") ] [];
  check_bound "selective seed filters rest" [ (0, c "f"); (1, c "b") ] [ f4 ]

let test_gaifman () =
  let fs =
    Fact_set.of_list
      [ atom e [ c "a"; c "b" ]; atom e [ c "b"; c "x" ]; atom p [ c "z" ] ]
  in
  let gg = Gaifman.of_fact_set fs in
  Alcotest.(check (option int)) "dist a-x" (Some 2)
    (Gaifman.distance gg (c "a") (c "x"));
  Alcotest.(check (option int)) "disconnected" None
    (Gaifman.distance gg (c "a") (c "z"));
  Alcotest.(check bool) "not connected" false (Gaifman.connected gg);
  Alcotest.(check int) "two components" 2 (List.length (Gaifman.components gg));
  Alcotest.(check int) "degree of b" 2 (Gaifman.degree gg (c "b"));
  Alcotest.(check int) "max degree" 2 (Gaifman.max_degree gg)

(* ------------------------------------------------------------------ *)
(* Homomorphisms and CQs                                              *)
(* ------------------------------------------------------------------ *)

let path_instance n =
  Fact_set.of_list
    (List.init n (fun i ->
         atom e [ c (Printf.sprintf "n%d" i); c (Printf.sprintf "n%d" (i + 1)) ]))

let test_cq_eval () =
  let fs = path_instance 3 in
  let x = v "x" and y = v "y" and z = v "z" in
  let q2 = Cq.make ~free:[ x; z ] [ atom e [ x; y ]; atom e [ y; z ] ] in
  Alcotest.(check bool) "path of 2 holds" true
    (Cq.holds q2 fs [ c "n0"; c "n2" ]);
  Alcotest.(check bool) "wrong endpoints" false
    (Cq.holds q2 fs [ c "n0"; c "n3" ]);
  Alcotest.(check int) "two answers" 2 (List.length (Cq.answers q2 fs));
  Alcotest.(check bool) "boolean" true (Cq.boolean_holds q2 fs)

let test_cq_cycle_query () =
  let fs = path_instance 3 in
  let x = v "x" in
  let loop = Cq.make ~free:[] [ atom e [ x; x ] ] in
  Alcotest.(check bool) "no self loop" false (Cq.boolean_holds loop fs);
  let fs' = Fact_set.add (atom e [ c "n1"; c "n1" ]) fs in
  Alcotest.(check bool) "self loop found" true (Cq.boolean_holds loop fs')

let test_cq_validation () =
  let x = v "x" and y = v "y" in
  Alcotest.check_raises "empty body" (Invalid_argument "Cq.make: empty body")
    (fun () -> ignore (Cq.make ~free:[] []));
  (match Cq.make ~free:[ x ] [ atom e [ x; x ] ] with
  | q -> Alcotest.(check int) "size" 1 (Cq.size q));
  match Cq.make ~free:[ y ] [ atom e [ x; x ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "free variable not in body should be rejected"

let test_cq_connectivity () =
  let x = v "x" and y = v "y" and z = v "z" and w = v "w" in
  let conn = Cq.make ~free:[] [ atom e [ x; y ]; atom e [ y; z ] ] in
  let disc = Cq.make ~free:[] [ atom e [ x; y ]; atom e [ z; w ] ] in
  Alcotest.(check bool) "connected" true (Cq.is_connected conn);
  Alcotest.(check bool) "disconnected" false (Cq.is_connected disc)

let test_containment () =
  let x = v "x" and y = v "y" and z = v "z" in
  (* q1 = E(x,y),E(y,z) "path of 2"; q2 = E(x,y) "edge" — boolean. *)
  let q_path2 = Cq.make ~free:[] [ atom e [ x; y ]; atom e [ y; z ] ] in
  let q_edge = Cq.make ~free:[] [ atom e [ x; y ] ] in
  Alcotest.(check bool) "path2 implies edge" true
    (Containment.implies q_path2 q_edge);
  Alcotest.(check bool) "edge does not imply path2" false
    (Containment.implies q_edge q_path2);
  let q_selfloop = Cq.make ~free:[] [ atom e [ x; x ] ] in
  Alcotest.(check bool) "selfloop implies path2" true
    (Containment.implies q_selfloop q_path2);
  Alcotest.(check bool) "selfloop implies edge" true
    (Containment.implies q_selfloop q_edge)

let test_containment_free_vars () =
  let x = v "x" and y = v "y" and z = v "z" in
  let q1 = Cq.make ~free:[ x ] [ atom e [ x; y ]; atom e [ y; z ] ] in
  let q2 = Cq.make ~free:[ x ] [ atom e [ x; y ] ] in
  Alcotest.(check bool) "answered path implies answered edge" true
    (Containment.implies q1 q2);
  (* With different free variables the homomorphism must respect them:
     E(x,y) with free x vs E(y,x) with free x are incomparable. *)
  let q3 = Cq.make ~free:[ x ] [ atom e [ y; x ] ] in
  Alcotest.(check bool) "out-edge vs in-edge" false
    (Containment.implies q2 q3)

let test_isomorphism () =
  let x = v "x" and y = v "y" and z = v "z" in
  let q1 = Cq.make ~free:[] [ atom e [ x; y ]; atom e [ y; z ] ] in
  let q2 =
    let a = v "a" and b = v "b" and cc = v "cv" in
    Cq.make ~free:[] [ atom e [ a; b ]; atom e [ b; cc ] ]
  in
  Alcotest.(check bool) "renamed path isomorphic" true
    (Containment.isomorphic q1 q2);
  let q3 = Cq.make ~free:[] [ atom e [ x; y ]; atom e [ x; z ] ] in
  Alcotest.(check bool) "fork not isomorphic to path" false
    (Containment.isomorphic q1 q3);
  (* Two disjoint copies of an edge are equivalent (but not isomorphic) to
     one edge. *)
  let copies =
    let a = v "ia" and b = v "ib" and s = v "is" and t = v "it" in
    Cq.make ~free:[] [ atom e [ a; b ]; atom e [ s; t ] ]
  in
  let edge = Cq.make ~free:[] [ atom e [ x; y ] ] in
  Alcotest.(check bool) "equivalent" true (Containment.equivalent copies edge);
  Alcotest.(check bool) "but not isomorphic" false
    (Containment.isomorphic copies edge)

let test_query_core () =
  let x = v "x" and y = v "y" and z = v "z" in
  (* E(x,y), E(x,z): z-atom is redundant (fold z onto y). *)
  let q = Cq.make ~free:[ x ] [ atom e [ x; y ]; atom e [ x; z ] ] in
  let core = Containment.core_of_query q in
  Alcotest.(check int) "core has one atom" 1 (Cq.size core);
  Alcotest.(check bool) "core equivalent" true (Containment.equivalent q core);
  (* A genuine path of 2 is already a core. *)
  let q2 = Cq.make ~free:[ x; z ] [ atom e [ x; y ]; atom e [ y; z ] ] in
  Alcotest.(check int) "path core keeps both" 2
    (Cq.size (Containment.core_of_query q2))

let test_ucq_minimize () =
  let x = v "x" and y = v "y" and z = v "z" in
  let edge = Cq.make ~free:[] [ atom e [ x; y ] ] in
  let path2 = Cq.make ~free:[] [ atom e [ x; y ]; atom e [ y; z ] ] in
  let u = Ucq.of_list [ path2; edge ] in
  (* path2 implies edge, so path2 is redundant in the union. *)
  Alcotest.(check int) "one disjunct" 1 (Ucq.cardinal u);
  Alcotest.(check int) "edge survived" 1
    (Cq.size (List.hd (Ucq.disjuncts u)));
  let u', status = Ucq.add_minimal u path2 in
  Alcotest.(check bool) "subsumed" true (status = `Subsumed);
  Alcotest.(check int) "unchanged" 1 (Ucq.cardinal u')

(* ------------------------------------------------------------------ *)
(* TGDs                                                               *)
(* ------------------------------------------------------------------ *)

let test_skolemization_by_head_type () =
  let x = v "x" and y = v "y" and z = v "z" in
  (* Two rules with isomorphic heads must share Skolem functions
     (Definition 4: the function depends on the head type only). *)
  let r1 =
    Tgd.make ~body:[ atom e [ x; y ] ] ~head:[ atom r [ y; z ] ] ()
  in
  let r2 =
    Tgd.make ~body:[ atom p [ y ] ] ~head:[ atom r [ y; z ] ] ()
  in
  let sk1 = List.hd r1.Tgd.skolemized_head in
  let sk2 = List.hd r2.Tgd.skolemized_head in
  Alcotest.(check bool) "shared skolem" true (Atom.equal sk1 sk2)

let test_skolemization_example () =
  (* The paper's example: E(x,y,z), P(x) -> exists v. R4(y,v,z,v)
     skolemizes to R4(y, f(y,z), z, f(y,z)). *)
  let x = v "x" and y = v "y" and z = v "z" and w = v "w" in
  let e3 = sym "Et" 3 and r4 = sym "Rf" 4 in
  let rule =
    Tgd.make
      ~body:[ atom e3 [ x; y; z ]; atom p [ x ] ]
      ~head:[ atom r4 [ y; w; z; w ] ]
      ()
  in
  let sk = List.hd rule.Tgd.skolemized_head in
  (match Atom.args sk with
  | [ a1; a2; a3; a4 ] ->
      Alcotest.(check bool) "pos1 is y" true (Term.equal a1 y);
      Alcotest.(check bool) "pos3 is z" true (Term.equal a3 z);
      Alcotest.(check bool) "skolem repeated" true (Term.equal a2 a4);
      Alcotest.(check bool) "skolem is functional" true (Term.is_functional a2);
      (match a2.Term.view with
      | Term.App { args; _ } ->
          Alcotest.(check int) "skolem arity = frontier" 2 (List.length args)
      | _ -> Alcotest.fail "expected App")
  | _ -> Alcotest.fail "arity 4 expected");
  Alcotest.(check (list string)) "frontier y,z"
    [ "y"; "z" ]
    (List.map (Fmt.str "%a" Term.pp) (Tgd.frontier rule))

let test_tgd_classification () =
  let x = v "x" and y = v "y" and z = v "z" in
  let linear = Tgd.make ~body:[ atom e [ x; y ] ] ~head:[ atom e [ y; z ] ] () in
  Alcotest.(check bool) "linear" true (Tgd.is_linear linear);
  Alcotest.(check bool) "linear is guarded" true (Tgd.is_guarded linear);
  Alcotest.(check bool) "not datalog" false (Tgd.is_datalog linear);
  let dl = Tgd.make ~body:[ atom e [ x; y ] ] ~head:[ atom e [ y; x ] ] () in
  Alcotest.(check bool) "datalog" true (Tgd.is_datalog dl);
  let joined =
    Tgd.make ~body:[ atom e [ x; y ]; atom e [ y; z ] ] ~head:[ atom e [ x; z ] ] ()
  in
  Alcotest.(check bool) "join not guarded" false (Tgd.is_guarded joined);
  Alcotest.(check bool) "join connected" true (Tgd.is_connected joined);
  let disconnected =
    Tgd.make ~body:[ atom e [ x; x ]; atom e [ y; y ] ] ~head:[ atom e [ x; y ] ] ()
  in
  Alcotest.(check bool) "disconnected body" false (Tgd.is_connected disconnected);
  let detached =
    Tgd.make ~body:[ atom e [ x; y ] ] ~head:[ atom e [ z; z ] ] ()
  in
  Alcotest.(check bool) "detached" true (Tgd.is_detached detached)

let test_tgd_satisfaction () =
  let x = v "x" and y = v "y" and z = v "z" in
  let rule = Tgd.make ~body:[ atom e [ x; y ] ] ~head:[ atom e [ y; z ] ] () in
  let closed =
    Fact_set.of_list [ atom e [ c "a"; c "b" ]; atom e [ c "b"; c "b" ] ]
  in
  Alcotest.(check bool) "closed model" true (Tgd.satisfied_in rule closed);
  let open_ = Fact_set.of_list [ atom e [ c "a"; c "b" ] ] in
  Alcotest.(check bool) "missing witness" false (Tgd.satisfied_in rule open_);
  Alcotest.(check bool) "violating trigger found" true
    (Tgd.violating_trigger rule open_ <> None)

let test_tgd_apply () =
  let x = v "x" and y = v "y" and z = v "z" in
  let rule = Tgd.make ~body:[ atom e [ x; y ] ] ~head:[ atom e [ y; z ] ] () in
  let triggers = ref [] in
  Tgd.triggers rule (path_instance 2) (fun s -> triggers := s :: !triggers);
  Alcotest.(check int) "two triggers" 2 (List.length !triggers);
  let atoms = List.concat_map (Tgd.apply rule) !triggers in
  Alcotest.(check int) "two derived atoms" 2
    (Atom.Set.cardinal (Atom.Set.of_list atoms));
  List.iter
    (fun a ->
      Alcotest.(check bool) "head relation" true
        (Symbol.equal (Atom.rel a) e);
      Alcotest.(check bool) "second arg skolem" true
        (Term.is_functional (Atom.arg a 1)))
    atoms

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_rule () =
  let rule = Parser.parse_rule "grid: R(x,x'), G(x,u), G(u,u') -> exists z. R(u',z), G(x',z)" in
  Alcotest.(check string) "name" "grid" (Tgd.name rule);
  Alcotest.(check int) "body size" 3 (List.length (Tgd.body rule));
  Alcotest.(check int) "head size" 2 (List.length (Tgd.head rule));
  Alcotest.(check int) "one existential" 1 (List.length (Tgd.exist_vars rule));
  Alcotest.(check int) "frontier x', u'" 2 (List.length (Tgd.frontier rule))

let test_parse_special_rules () =
  let loop = Parser.parse_rule "true -> exists x. R(x,x), G(x,x)" in
  Alcotest.(check int) "loop empty body" 0 (List.length (Tgd.body loop));
  Alcotest.(check int) "loop no dom vars" 0 (List.length (Tgd.dom_vars loop));
  let pins = Parser.parse_rule "dom(x) -> exists z z'. R(x,z), G(x,z')" in
  Alcotest.(check int) "pins dom var" 1 (List.length (Tgd.dom_vars pins));
  Alcotest.(check int) "pins two existentials" 2
    (List.length (Tgd.exist_vars pins))

let test_parse_theory_and_instance () =
  let theory =
    Parser.parse_theory ~name:"ta"
      "mother: Human(y) -> exists z. Mother(y,z)\n\
       human: Mother(x,y) -> Human(y)"
  in
  Alcotest.(check int) "two rules" 2 (List.length (Theory.rules theory));
  let inst = Parser.parse_instance "Human(abel). Mother(eve, abel)" in
  Alcotest.(check int) "two facts" 2 (Fact_set.cardinal inst);
  Alcotest.(check bool) "constants" true
    (Fact_set.mem
       (atom (sym "Human" 1) [ c "abel" ])
       inst)

let test_parse_query () =
  let q = Parser.parse_query "(x, y) :- R(x,z), G(z,y)" in
  Alcotest.(check int) "two free" 2 (List.length (Cq.free q));
  Alcotest.(check int) "two atoms" 2 (Cq.size q);
  let bq = Parser.parse_query ":- Mother(\"abel\", y)" in
  Alcotest.(check bool) "boolean" true (Cq.is_boolean bq);
  match Atom.args (List.hd (Cq.atoms bq)) with
  | [ a; _ ] -> Alcotest.(check bool) "quoted constant" true (Term.is_const a)
  | _ -> Alcotest.fail "arity"

let test_parse_errors () =
  let expect_fail input =
    match Parser.parse_rule input with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ input)
  in
  expect_fail "E(x,y) ->";
  expect_fail "-> E(x,y)";
  expect_fail "E(x y) -> E(x,x)";
  match Parser.parse_theory "E(x,y) -> E(y,x). E(x,y,z) -> E(x,y,z)" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "inconsistent arity should fail"

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

let gen_small_instance =
  (* Random instances over E/2 with up to 5 nodes and 8 edges. *)
  QCheck.make
    ~print:(fun edges ->
      Fmt.str "%a" Fact_set.pp
        (Fact_set.of_list
           (List.map
              (fun (i, j) ->
                atom e [ c (string_of_int i); c (string_of_int j) ])
              edges)))
    QCheck.Gen.(list_size (0 -- 8) (pair (0 -- 4) (0 -- 4)))

let fact_set_of_edges edges =
  Fact_set.of_list
    (List.map
       (fun (i, j) -> atom e [ c (string_of_int i); c (string_of_int j) ])
       edges)

let prop_hom_composition =
  (* Identity is a hom; the found retraction really maps atoms to atoms. *)
  QCheck.Test.make ~count:100 ~name:"found homomorphisms are homomorphisms"
    gen_small_instance
    (fun edges ->
      let fs = fact_set_of_edges edges in
      QCheck.assume (not (Fact_set.is_empty fs));
      let flexible = Fact_set.domain fs in
      match
        Homomorphism.find
          (Homomorphism.make ~flexible ~pattern:(Fact_set.atoms fs)
             ~target:fs ())
      with
      | None -> false
      | Some m ->
          List.for_all
            (fun a -> Fact_set.mem (Homomorphism.apply m ~flexible a) fs)
            (Fact_set.atoms fs))

let prop_containment_reflexive =
  QCheck.Test.make ~count:100 ~name:"implies is reflexive" gen_small_instance
    (fun edges ->
      QCheck.assume (edges <> []);
      let fs = fact_set_of_edges edges in
      (* Turn the instance into a boolean query over variables. *)
      let renaming =
        Term.Set.elements (Fact_set.domain fs)
        |> List.map (fun t -> (t, v ("q" ^ Fmt.str "%a" Term.pp t)))
      in
      let m =
        List.fold_left
          (fun acc (a, b) -> Term.Int_map.add (Term.hash a) b acc)
          Term.Int_map.empty renaming
      in
      let q =
        Cq.make ~free:[]
          (List.map (Atom.subst m) (Fact_set.atoms fs))
      in
      Containment.implies q q)

(* Round-trip: pretty-print a zoo rule, parse it back, compare shape. *)
let prop_rule_roundtrip =
  let rules =
    List.concat_map Theory.rules
      [
        Theories.Zoo.t_a; Theories.Zoo.t_p; Theories.Zoo.t_loopcut;
        Theories.Zoo.t_sticky; Theories.Zoo.t_c; Theories.Zoo.t_d;
        Theories.Zoo.t_ex66; Theories.Zoo.t_spouse;
      ]
  in
  QCheck.Test.make ~count:(List.length rules)
    ~name:"rule pretty-print / parse round-trip"
    (QCheck.make (QCheck.Gen.int_bound (List.length rules - 1)))
    (fun i ->
      let rule = List.nth rules i in
      let printed = Fmt.str "%a" Tgd.pp rule in
      let reparsed = Parser.parse_rule printed in
      List.length (Tgd.body rule) = List.length (Tgd.body reparsed)
      && List.length (Tgd.head rule) = List.length (Tgd.head reparsed)
      && List.length (Tgd.exist_vars rule)
         = List.length (Tgd.exist_vars reparsed)
      && List.length (Tgd.dom_vars rule)
         = List.length (Tgd.dom_vars reparsed)
      && List.length (Tgd.frontier rule)
         = List.length (Tgd.frontier reparsed))

let prop_instance_roundtrip =
  QCheck.Test.make ~count:100
    ~name:"ground instance pretty-print / parse round-trip"
    (QCheck.make QCheck.Gen.(list_size (1 -- 8) (pair (0 -- 4) (0 -- 4))))
    (fun edges ->
      let fs = fact_set_of_edges edges in
      let printed = Fmt.str "%a" Fact_set.pp fs in
      Fact_set.equal fs (Parser.parse_instance printed))

let prop_incremental_index_equiv =
  (* A fact set grown by a random interleaving of add/union/diff — whose
     index is extended by delta layers and shared structurally — must
     answer every probe exactly like a set rebuilt from scratch from its
     atoms (which gets a fresh single-layer index). *)
  let gen_ops =
    QCheck.Gen.(
      list_size (1 -- 12)
        (pair (0 -- 2) (list_size (0 -- 6) (pair (0 -- 4) (0 -- 4)))))
  in
  let print_ops ops =
    String.concat "; "
      (List.map
         (fun (op, edges) ->
           Printf.sprintf "%s %s"
             (match op with 0 -> "add" | 1 -> "union" | _ -> "diff")
             (String.concat ","
                (List.map (fun (i, j) -> Printf.sprintf "%d-%d" i j) edges)))
         ops)
  in
  QCheck.Test.make ~count:200 ~name:"incremental index = rebuilt index"
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      let apply fs (op, edges) =
        let other = fact_set_of_edges edges in
        match op with
        | 0 ->
            List.fold_left
              (fun acc a -> Fact_set.add a acc)
              fs (Fact_set.atoms other)
        | 1 -> Fact_set.union fs other
        | _ -> Fact_set.diff fs other
      in
      let fs = List.fold_left apply Fact_set.empty ops in
      let rebuilt = Fact_set.of_list (Fact_set.atoms fs) in
      let same_answers l1 l2 =
        (* Bucket order may differ between a layered and a fresh index;
           only the answer set is specified. *)
        Atom.Set.equal (Atom.Set.of_list l1) (Atom.Set.of_list l2)
      in
      let nodes = List.init 5 (fun i -> c (string_of_int i)) in
      Fact_set.equal fs rebuilt
      && Term.Set.equal (Fact_set.domain fs) (Fact_set.domain rebuilt)
      && same_answers (Fact_set.by_rel fs e) (Fact_set.by_rel rebuilt e)
      && List.for_all
           (fun ti ->
             same_answers
               (Fact_set.candidates fs e ~bound:[ (0, ti) ])
               (Fact_set.candidates rebuilt e ~bound:[ (0, ti) ])
             && List.for_all
                  (fun tj ->
                    same_answers
                      (Fact_set.candidates fs e ~bound:[ (0, ti); (1, tj) ])
                      (Fact_set.candidates rebuilt e
                         ~bound:[ (0, ti); (1, tj) ]))
                  nodes)
           nodes)

let () =
  Alcotest.run "logic"
    [
      ( "term",
        [
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "measures" `Quick test_term_measures;
          Alcotest.test_case "doubling stays small" `Quick
            test_term_doubling_stays_small;
          Alcotest.test_case "substitution" `Quick test_subst;
        ] );
      ( "atom+fact_set",
        [
          Alcotest.test_case "arity check" `Quick test_atom_arity_check;
          Alcotest.test_case "fact set ops" `Quick test_fact_set_ops;
          Alcotest.test_case "position index by term id" `Quick
            test_position_index_term_id;
          Alcotest.test_case "candidates with several bounds" `Quick
            test_candidates_multi_bound;
          Alcotest.test_case "gaifman" `Quick test_gaifman;
        ] );
      ( "cq",
        [
          Alcotest.test_case "evaluation" `Quick test_cq_eval;
          Alcotest.test_case "cycle query" `Quick test_cq_cycle_query;
          Alcotest.test_case "validation" `Quick test_cq_validation;
          Alcotest.test_case "connectivity" `Quick test_cq_connectivity;
        ] );
      ( "containment",
        [
          Alcotest.test_case "boolean containment" `Quick test_containment;
          Alcotest.test_case "free variables" `Quick test_containment_free_vars;
          Alcotest.test_case "isomorphism" `Quick test_isomorphism;
          Alcotest.test_case "query core" `Quick test_query_core;
          Alcotest.test_case "ucq minimize" `Quick test_ucq_minimize;
        ] );
      ( "tgd",
        [
          Alcotest.test_case "skolem shared by head type" `Quick
            test_skolemization_by_head_type;
          Alcotest.test_case "skolem example from paper" `Quick
            test_skolemization_example;
          Alcotest.test_case "classification" `Quick test_tgd_classification;
          Alcotest.test_case "satisfaction" `Quick test_tgd_satisfaction;
          Alcotest.test_case "triggers and apply" `Quick test_tgd_apply;
        ] );
      ( "parser",
        [
          Alcotest.test_case "rule" `Quick test_parse_rule;
          Alcotest.test_case "special rules" `Quick test_parse_special_rules;
          Alcotest.test_case "theory and instance" `Quick
            test_parse_theory_and_instance;
          Alcotest.test_case "query" `Quick test_parse_query;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_hom_composition;
          QCheck_alcotest.to_alcotest prop_containment_reflexive;
          QCheck_alcotest.to_alcotest prop_rule_roundtrip;
          QCheck_alcotest.to_alcotest prop_instance_roundtrip;
          QCheck_alcotest.to_alcotest prop_incremental_index_equiv;
        ] );
    ]

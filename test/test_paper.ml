(* The paper-conformance suite: each numbered statement of the paper that
   has executable content is asserted here on randomly generated theories
   and instances (deterministic seeds), complementing the per-module unit
   tests. Linear theories are the workhorse: they are provably BDD, so the
   saturating rewriter is a terminating oracle against the chase. *)

open Logic

let seeds = [ 1; 2; 3; 5; 8; 13; 21; 34 ]

let linear_theory seed =
  Theories.Generators.random_linear_binary ~seed ~rels:3 ~rules:4

let datalog_theory seed =
  Theories.Generators.random_datalog_binary ~seed ~rels:3 ~rules:4

let instance_for seed theory =
  Theories.Generators.random_instance_for ~seed theory ~nodes:4 ~facts:6

let atomic_query theory =
  (* A boolean atomic query over the theory's first binary relation. *)
  let rel =
    List.hd
      (Symbol.Set.elements
         (Symbol.Set.filter
            (fun s -> Symbol.arity s = 2)
            (Theory.signature theory)))
  in
  Cq.make ~free:[] [ Atom.make rel [ Term.var "qa"; Term.var "qb" ] ]

(* ------------------------------------------------------------------ *)
(* Observation 2: homomorphic images of models are models              *)
(* ------------------------------------------------------------------ *)

let test_observation2 () =
  List.iter
    (fun seed ->
      let theory = datalog_theory seed in
      let d = instance_for seed theory in
      let run = Chase.Engine.run ~max_depth:20 theory d in
      if Chase.Engine.saturated run then begin
        let model = Chase.Engine.result run in
        Alcotest.(check bool) "saturated chase is a model" true
          (Theory.satisfied_in theory model);
        (* Fold it: the core is an endomorphic image, hence also a model. *)
        let folded = Chase.Core_model.core_of model in
        Alcotest.(check bool)
          (Printf.sprintf "folded model still a model (seed %d)" seed)
          true
          (Theory.satisfied_in theory folded)
      end)
    seeds

(* ------------------------------------------------------------------ *)
(* Observation 8: literal restart equality on random linear theories   *)
(* ------------------------------------------------------------------ *)

let test_observation8_random () =
  List.iter
    (fun seed ->
      let theory = linear_theory seed in
      let d = instance_for seed theory in
      if not (Fact_set.is_empty d) then begin
        let run1 = Chase.Engine.run ~max_depth:6 ~max_atoms:20_000 theory d in
        let f = Chase.Engine.stage run1 (min 2 (Chase.Engine.depth run1)) in
        let run2 = Chase.Engine.run ~max_depth:4 ~max_atoms:20_000 theory f in
        Alcotest.(check bool)
          (Printf.sprintf "restart stays inside (seed %d)" seed)
          true
          (Fact_set.subset
             (Chase.Engine.stage run2 (min 2 (Chase.Engine.depth run2)))
             (Chase.Engine.result run1))
      end)
    seeds

(* ------------------------------------------------------------------ *)
(* Observation 10: unique birth atoms                                  *)
(* ------------------------------------------------------------------ *)

let test_observation10_random () =
  List.iter
    (fun seed ->
      let theory = linear_theory seed in
      let d = instance_for seed theory in
      let run = Chase.Engine.run ~max_depth:4 ~max_atoms:10_000 theory d in
      Term.Set.iter
        (fun t ->
          (* Count atoms in which t occurs outside the frontier. *)
          let count =
            List.length
              (List.filter
                 (fun atom ->
                   List.exists (Term.equal t) (Atom.args atom)
                   &&
                   match Chase.Engine.atom_frontier run atom with
                   | Some fr -> not (Term.Set.mem t fr)
                   | None -> false)
                 (Fact_set.atoms (Chase.Engine.result run)))
          in
          Alcotest.(check int)
            (Fmt.str "unique birth atom for %a (seed %d)" Term.pp t seed)
            1 count)
        (Chase.Engine.invented_terms run))
    seeds

(* ------------------------------------------------------------------ *)
(* Theorem 1: rew terminates on linear theories, is an antichain, and  *)
(* agrees with the chase                                               *)
(* ------------------------------------------------------------------ *)

let test_theorem1_linear () =
  List.iter
    (fun seed ->
      let theory = linear_theory seed in
      let q = atomic_query theory in
      let r = Rewriting.Rewrite.rewrite theory q in
      Alcotest.(check bool)
        (Printf.sprintf "linear rewriting completes (seed %d)" seed)
        true
        (r.Rewriting.Rewrite.outcome = Rewriting.Rewrite.Complete);
      (* Minimality: no disjunct implies another (the antichain property of
         Theorem 1's second bullet). *)
      let disjuncts = Ucq.disjuncts r.Rewriting.Rewrite.ucq in
      List.iteri
        (fun i qi ->
          List.iteri
            (fun j qj ->
              if i <> j then
                Alcotest.(check bool)
                  (Printf.sprintf "antichain %d-%d (seed %d)" i j seed)
                  false
                  (Containment.implies qi qj))
            disjuncts)
        disjuncts;
      (* Chase agreement on random instances. *)
      List.iter
        (fun iseed ->
          let d = instance_for iseed theory in
          Alcotest.(check bool)
            (Printf.sprintf "chase agreement (seed %d/%d)" seed iseed)
            true
            (Rewriting.Bdd.rewriting_certifies ~max_depth:8 ~max_atoms:20_000
               theory q [ d ]))
        [ 101; 102 ])
    seeds

(* ------------------------------------------------------------------ *)
(* Exercise 14: rew is unique (canonical up to equivalence)            *)
(* ------------------------------------------------------------------ *)

let test_exercise14_uniqueness () =
  List.iter
    (fun seed ->
      let theory = linear_theory seed in
      let q = atomic_query theory in
      (* Rewrite the query and an alpha-renamed copy: the two rewritings
         must be equivalent disjunct-by-disjunct. *)
      let q', _ = Cq.refresh q in
      let r1 = Rewriting.Rewrite.rewrite theory q in
      let r2 = Rewriting.Rewrite.rewrite theory q' in
      let covered u1 u2 =
        List.for_all
          (fun d1 ->
            List.exists
              (fun d2 -> Containment.equivalent d1 d2)
              (Ucq.disjuncts u2))
          (Ucq.disjuncts u1)
      in
      Alcotest.(check bool)
        (Printf.sprintf "rew unique up to equivalence (seed %d)" seed)
        true
        (covered r1.Rewriting.Rewrite.ucq r2.Rewriting.Rewrite.ucq
        && covered r2.Rewriting.Rewrite.ucq r1.Rewriting.Rewrite.ucq))
    seeds

(* ------------------------------------------------------------------ *)
(* Exercise 16: disjuncts of rew(q) entail q over the chase            *)
(* ------------------------------------------------------------------ *)

let test_exercise16 () =
  List.iter
    (fun seed ->
      let theory = linear_theory seed in
      let q = atomic_query theory in
      let r = Rewriting.Rewrite.rewrite theory q in
      let d = instance_for (seed + 50) theory in
      let run = Chase.Engine.run ~max_depth:8 ~max_atoms:20_000 theory d in
      let ch = Chase.Engine.result run in
      List.iter
        (fun disjunct ->
          if Cq.boolean_holds disjunct ch then
            Alcotest.(check bool)
              (Printf.sprintf "disjunct entails q (seed %d)" seed)
              true (Cq.boolean_holds q ch))
        (Ucq.disjuncts r.Rewriting.Rewrite.ucq))
    seeds

(* ------------------------------------------------------------------ *)
(* Exercise 15: a disjunct true in the chase implies one true in D     *)
(* ------------------------------------------------------------------ *)

let test_exercise15 () =
  List.iter
    (fun seed ->
      let theory = linear_theory seed in
      let q = atomic_query theory in
      let r = Rewriting.Rewrite.rewrite theory q in
      let d = instance_for (seed + 77) theory in
      let run = Chase.Engine.run ~max_depth:6 ~max_atoms:20_000 theory d in
      let ch = Chase.Engine.result run in
      let some_disjunct_on f =
        List.exists
          (fun disjunct -> Cq.boolean_holds disjunct f)
          (Ucq.disjuncts r.Rewriting.Rewrite.ucq)
      in
      if some_disjunct_on ch then
        Alcotest.(check bool)
          (Printf.sprintf "some disjunct already true in D (seed %d)" seed)
          true (some_disjunct_on d))
    seeds

(* ------------------------------------------------------------------ *)
(* Observation 29 via explanations                                     *)
(* ------------------------------------------------------------------ *)

let test_observation29_explain () =
  List.iter
    (fun seed ->
      let theory = linear_theory seed in
      let d = instance_for seed theory in
      let q = atomic_query theory in
      let run = Chase.Engine.run ~max_depth:5 ~max_atoms:20_000 theory d in
      if Cq.boolean_holds q (Chase.Engine.result run) then begin
        match Chase.Explain.explain run q [] with
        | Some expl ->
            Alcotest.(check bool)
              (Printf.sprintf "support inside D (seed %d)" seed)
              true
              (Fact_set.subset expl.Chase.Explain.support d);
            Alcotest.(check bool)
              (Printf.sprintf "support sufficient (seed %d)" seed)
              true
              (Chase.Explain.support_is_sufficient ~max_depth:8 run expl q []);
            (* Linear rules: each derivation consumes one fact, so the
               support of an atomic query is at most 1 fact per query
               atom. *)
            Alcotest.(check bool)
              (Printf.sprintf "support small (seed %d)" seed)
              true
              (Fact_set.cardinal expl.Chase.Explain.support <= Cq.size q)
        | None -> Alcotest.fail "explanation must exist for entailed query"
      end)
    seeds

(* ------------------------------------------------------------------ *)
(* Observation 44: linear theories do not contract distances           *)
(* ------------------------------------------------------------------ *)

let test_observation44_linear_distancing () =
  List.iter
    (fun seed ->
      let theory = linear_theory seed in
      let d = instance_for seed theory in
      let run = Chase.Engine.run ~max_depth:5 ~max_atoms:20_000 theory d in
      match Rewriting.Distancing.max_contraction run with
      | Some (_, ratio) ->
          Alcotest.(check bool)
            (Printf.sprintf "no contraction (seed %d)" seed)
            true (ratio <= 1.0 +. 1e-9)
      | None -> ())
    seeds

(* ------------------------------------------------------------------ *)
(* The portfolio on the whole zoo: classify everything, never route    *)
(* to an unsound strategy                                              *)
(* ------------------------------------------------------------------ *)

let zoo_expectations =
  (* The expected strategy per zoo theory, from the paper's own class
     memberships: FUS members rewrite, Datalog/weakly-acyclic members
     chase to saturation, T_d/T_d^K go to the marked process, and the
     decidable-but-not-BDD rest stays on the budgeted chase. *)
  [
    ("T_a", Theories.Zoo.t_a, Portfolio.Ucq_rewriting);
    ("T_p", Theories.Zoo.t_p, Portfolio.Ucq_rewriting);
    ("T_sticky", Theories.Zoo.t_sticky, Portfolio.Ucq_rewriting);
    ("T_e28[3]", Theories.Zoo.t_e28 3, Portfolio.Ucq_rewriting);
    ("T_spouse", Theories.Zoo.t_spouse, Portfolio.Ucq_rewriting);
    (* Example 41 is Datalog: the chase saturates, rewriting diverges. *)
    ("T_nonbdd", Theories.Zoo.t_nonbdd, Portfolio.Terminating_chase);
    ("T_d", Theories.Zoo.t_d, Portfolio.Marked_process 2);
    ("T_d^2", Theories.Zoo.t_dk 2, Portfolio.Marked_process 2);
    ("T_d^3", Theories.Zoo.t_dk 3, Portfolio.Marked_process 3);
    ("T_d^4", Theories.Zoo.t_dk 4, Portfolio.Marked_process 4);
    (* No class evidence: sound answers only under a budget. *)
    ("T_loopcut", Theories.Zoo.t_loopcut, Portfolio.Budgeted_chase);
    ("T_c", Theories.Zoo.t_c, Portfolio.Budgeted_chase);
    ("T_d_noloop", Theories.Zoo.t_d_noloop, Portfolio.Budgeted_chase);
    ("T_ex66", Theories.Zoo.t_ex66, Portfolio.Budgeted_chase);
  ]

let test_portfolio_plans_whole_zoo () =
  List.iter
    (fun (name, theory, expected) ->
      let plan = Portfolio.plan theory in
      Alcotest.(check string)
        (Printf.sprintf "%s strategy" name)
        (Portfolio.Strategy.strategy_name expected)
        (Portfolio.Strategy.strategy_name plan.Portfolio.Strategy.strategy);
      Alcotest.(check bool)
        (Printf.sprintf "%s has reasons" name)
        true
        (plan.Portfolio.Strategy.reasons <> []);
      (* Soundness: the evidence the plan cites must actually hold. *)
      let r = plan.Portfolio.Strategy.report in
      let sound =
        match plan.Portfolio.Strategy.strategy with
        | Portfolio.Ucq_rewriting ->
            r.Portfolio.Checkers.rewriter_ok
            && (r.Portfolio.Checkers.classes.Theories.Classes.linear
               || r.Portfolio.Checkers.classes.Theories.Classes.sticky
               || r.Portfolio.Checkers.loops.Portfolio.Checkers.loop_restricted
               )
        | Portfolio.Marked_process _ -> r.Portfolio.Checkers.td <> None
        | Portfolio.Terminating_chase ->
            r.Portfolio.Checkers.classes.Theories.Classes.datalog
            || r.Portfolio.Checkers.classes.Theories.Classes.weakly_acyclic
        | Portfolio.Budgeted_chase -> true
      in
      Alcotest.(check bool) (Printf.sprintf "%s sound" name) true sound)
    zoo_expectations

(* ------------------------------------------------------------------ *)
(* Explain on the paper's own theories                                 *)
(* ------------------------------------------------------------------ *)

let test_explain_td () =
  let a0, a2, d = Theories.Instances.path Theories.Zoo.g2 2 in
  let _, _, phi1 = Theories.Zoo.phi_r 1 in
  let run = Chase.Engine.run ~max_depth:4 ~max_atoms:50_000 Theories.Zoo.t_d d in
  match Chase.Explain.explain run phi1 [ a0; a2 ] with
  | Some expl ->
      (* phi_R^1(a0,a2) on G^2 needs both green edges. *)
      Alcotest.(check int) "support is all of G^2" 2
        (Fact_set.cardinal expl.Chase.Explain.support);
      Alcotest.(check bool) "support sufficient" true
        (Chase.Explain.support_is_sufficient ~max_depth:4
           ~max_atoms:50_000 run expl phi1 [ a0; a2 ]);
      Alcotest.(check bool) "derivation has height >= 1" true
        (expl.Chase.Explain.depth >= 1);
      (* The printed explanation mentions the grid rule. *)
      let text = Fmt.str "%a" Chase.Explain.pp expl in
      let contains needle haystack =
        let nl = String.length needle and hl = String.length haystack in
        let rec go i =
          i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "mentions grid" true (contains "grid" text)
  | None -> Alcotest.fail "phi_R^1(a0,a2) should be explainable"

let () =
  Alcotest.run "paper"
    [
      ( "conformance",
        [
          Alcotest.test_case "observation 2" `Quick test_observation2;
          Alcotest.test_case "observation 8 (random)" `Quick
            test_observation8_random;
          Alcotest.test_case "observation 10 (random)" `Quick
            test_observation10_random;
          Alcotest.test_case "theorem 1 on linear theories" `Quick
            test_theorem1_linear;
          Alcotest.test_case "exercise 14 uniqueness" `Quick
            test_exercise14_uniqueness;
          Alcotest.test_case "exercise 15" `Quick test_exercise15;
          Alcotest.test_case "exercise 16" `Quick test_exercise16;
          Alcotest.test_case "observation 29 via explain" `Quick
            test_observation29_explain;
          Alcotest.test_case "observation 44" `Quick
            test_observation44_linear_distancing;
          Alcotest.test_case "explain T_d" `Quick test_explain_td;
          Alcotest.test_case "portfolio plans the whole zoo" `Quick
            test_portfolio_plans_whole_zoo;
        ] );
    ]

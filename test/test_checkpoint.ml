(* Tests for the durability layer (lib/checkpoint): snapshot format
   round-trips and rejection paths (magic/version/length/checksum),
   injected IO faults driving the degradation ladder (torn write,
   ENOSPC, corrupt read), codec round-trips for the hash-consed logic
   types, the supervisor's retry/resume/degrade behaviour, and —
   the acceptance contract — resume differentials against uninterrupted
   references: bit-identical chase stages and UCQ-equivalent rewritings
   from every snapshot round, at pool sizes 1 and 4.

   Real SIGKILL trials live in tools/crash_harness.ml (make
   check-resume); these tests cover the same resume paths in-process,
   where every intermediate snapshot can be replayed deterministically. *)

open Logic

(* ------------------------------------------------------------------ *)
(* Scratch directories and raw-file helpers                            *)
(* ------------------------------------------------------------------ *)

let tmp_root =
  Filename.concat (Filename.get_temp_dir_name ()) "frontier-ckpt-tests"

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* [Checkpoint.sink] creates the directory (and parents), so routing
   creation through it also exercises that contract. *)
let fresh_dir name =
  let dir = Filename.concat tmp_root name in
  rm_rf dir;
  ignore (Checkpoint.sink dir : Checkpoint.sink);
  dir

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spew path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Flip the last payload byte: lands on content, so the header parses
   and the MD5 check is what rejects the file. *)
let flip_last_byte path =
  let b = Bytes.of_string (slurp path) in
  let i = Bytes.length b - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  spew path (Bytes.to_string b)

let rewrite_version v path =
  let s = slurp path in
  let nl = String.index s '\n' in
  spew path
    (Printf.sprintf "frontier-snapshot %d%s" v
       (String.sub s nl (String.length s - nl)))

let error_label = function
  | Checkpoint.Snapshot.Missing _ -> "missing"
  | Checkpoint.Snapshot.Bad_magic _ -> "bad-magic"
  | Checkpoint.Snapshot.Bad_version _ -> "bad-version"
  | Checkpoint.Snapshot.Bad_checksum _ -> "bad-checksum"
  | Checkpoint.Snapshot.Malformed _ -> "malformed"
  | Checkpoint.Snapshot.Io _ -> "io"

let write_exn ~dir snap =
  match Checkpoint.Snapshot.write ~dir snap with
  | Ok path -> path
  | Error e -> Alcotest.fail (Checkpoint.Snapshot.describe_error e)

let read_exn path =
  match Checkpoint.Snapshot.read path with
  | Ok t -> t
  | Error e -> Alcotest.fail (Checkpoint.Snapshot.describe_error e)

let check_read_error what path =
  match Checkpoint.Snapshot.read path with
  | Ok _ -> Alcotest.failf "expected %s rejection for %s" what path
  | Error e -> Alcotest.(check string) "rejection cause" what (error_label e)

let sample round =
  {
    Checkpoint.Snapshot.kind = "test";
    round;
    meta = [ ("alpha", "1"); ("note", "two words") ];
    sections = [ ("lines", [ "a"; "b c" ]); ("empty", []) ];
  }

let pool4 = Parallel.Pool.create 4

let with_faults schedule f =
  Guard.Faults.install schedule;
  Fun.protect
    ~finally:(fun () -> Guard.Faults.install Guard.Faults.none)
    f

(* ------------------------------------------------------------------ *)
(* Snapshot format                                                     *)
(* ------------------------------------------------------------------ *)

let test_snapshot_roundtrip () =
  let dir = fresh_dir "roundtrip" in
  let path = write_exn ~dir (sample 12) in
  Alcotest.(check string)
    "round-stamped filename" "snap-00000012.ckpt" (Filename.basename path);
  let t = read_exn path in
  Alcotest.(check string) "kind" "test" t.Checkpoint.Snapshot.kind;
  Alcotest.(check int) "round" 12 t.Checkpoint.Snapshot.round;
  Alcotest.(check (option int))
    "meta_int" (Some 1)
    (Checkpoint.Snapshot.meta_int t "alpha");
  Alcotest.(check (option string))
    "meta with spaces" (Some "two words")
    (Checkpoint.Snapshot.meta t "note");
  Alcotest.(check (option string))
    "absent meta" None
    (Checkpoint.Snapshot.meta t "absent");
  Alcotest.(check (list string))
    "section lines" [ "a"; "b c" ]
    (Checkpoint.Snapshot.section t "lines");
  Alcotest.(check (list string))
    "empty section" []
    (Checkpoint.Snapshot.section t "empty");
  Alcotest.(check (list string))
    "missing section" []
    (Checkpoint.Snapshot.section t "nope")

let test_snapshot_rejections () =
  let dir = fresh_dir "rejections" in
  check_read_error "missing" (Filename.concat dir "nope.ckpt");
  let junk = Filename.concat dir "snap-00000001.ckpt" in
  spew junk "hello world\nnot a snapshot\n";
  check_read_error "bad-magic" junk;
  let path = write_exn ~dir (sample 2) in
  rewrite_version 99 path;
  (match Checkpoint.Snapshot.read path with
  | Error (Checkpoint.Snapshot.Bad_version v) ->
      Alcotest.(check int) "reports the alien version" 99 v
  | Error e ->
      Alcotest.failf "expected bad-version, got %s"
        (Checkpoint.Snapshot.describe_error e)
  | Ok _ -> Alcotest.fail "version 99 accepted");
  let path = write_exn ~dir (sample 3) in
  flip_last_byte path;
  check_read_error "bad-checksum" path;
  (* Newlines in section lines would corrupt the line-oriented payload,
     so the writer refuses them up front (surfaced as an Io error, like
     any other abandoned write). *)
  match
    Checkpoint.Snapshot.write ~dir
      { (sample 4) with sections = [ ("bad", [ "two\nlines" ]) ] }
  with
  | Error (Checkpoint.Snapshot.Io _) -> ()
  | Error e ->
      Alcotest.failf "expected Io, got %s" (Checkpoint.Snapshot.describe_error e)
  | Ok _ -> Alcotest.fail "embedded newline accepted"

let test_list_and_load_latest () =
  let dir = fresh_dir "latest" in
  List.iter (fun r -> ignore (write_exn ~dir (sample r))) [ 3; 1; 2 ];
  Alcotest.(check (list int))
    "list is newest-first" [ 3; 2; 1 ]
    (List.map fst (Checkpoint.Snapshot.list ~dir));
  (* Corrupt the newest: load_latest must degrade to round 2 and count
     the rejection, both in its return and in the process counters. *)
  flip_last_byte (snd (List.hd (Checkpoint.Snapshot.list ~dir)));
  Checkpoint.reset_counters ();
  (match Checkpoint.Snapshot.load_latest ~dir with
  | Some (t, _), rejected ->
      Alcotest.(check int) "degraded to round 2" 2 t.Checkpoint.Snapshot.round;
      Alcotest.(check int) "one rejection on the way" 1 rejected
  | None, _ -> Alcotest.fail "no snapshot survived");
  Alcotest.(check int)
    "rejection counted" 1
    (Checkpoint.counters ()).Checkpoint.rejected_reads;
  Alcotest.(check bool)
    "rejected file left for post-mortem" true
    (Sys.file_exists (Filename.concat dir "snap-00000003.ckpt"))

let test_sink_prunes () =
  let dir = fresh_dir "prune" in
  let sink = Checkpoint.sink ~every:1 ~min_interval_s:0. ~keep:2 dir in
  List.iter (fun r -> Checkpoint.save_to sink (sample r)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int))
    "only the 2 newest survive" [ 5; 4 ]
    (List.map fst (Checkpoint.Snapshot.list ~dir))

(* ------------------------------------------------------------------ *)
(* Injected IO faults: the degradation ladder                          *)
(* ------------------------------------------------------------------ *)

let test_torn_write () =
  let dir = fresh_dir "torn" in
  let good = write_exn ~dir (sample 1) in
  with_faults
    (Guard.Faults.with_io ~torn_every:1 Guard.Faults.none)
    (fun () ->
      (* The torn file lands (the rename happens) but its payload was
         truncated after the digest was computed. *)
      ignore (write_exn ~dir (sample 2)));
  check_read_error "bad-checksum" (Filename.concat dir "snap-00000002.ckpt");
  (match Checkpoint.Snapshot.load_latest ~dir with
  | Some (t, path), rejected ->
      Alcotest.(check int) "degrades past the torn file" 1
        t.Checkpoint.Snapshot.round;
      Alcotest.(check string) "to the older good snapshot" good path;
      Alcotest.(check int) "torn file counted" 1 rejected
  | None, _ -> Alcotest.fail "good snapshot not found");
  ignore (read_exn good)

let test_enospc_write () =
  let dir = fresh_dir "enospc" in
  with_faults
    (Guard.Faults.with_io ~fsync_fail_every:1 Guard.Faults.none)
    (fun () ->
      Checkpoint.reset_counters ();
      (match Checkpoint.Snapshot.write ~dir (sample 1) with
      | Error (Checkpoint.Snapshot.Io _) -> ()
      | Error e ->
          Alcotest.failf "expected Io, got %s"
            (Checkpoint.Snapshot.describe_error e)
      | Ok _ -> Alcotest.fail "write survived a failed fsync");
      (* save_to absorbs the failure — durability is best-effort — and
         counts it for --stats. *)
      Checkpoint.save_to (Checkpoint.sink ~min_interval_s:0. dir) (sample 2);
      Alcotest.(check bool)
        "failures counted" true
        ((Checkpoint.counters ()).Checkpoint.write_failures >= 2));
  Alcotest.(check (list int))
    "no file landed" []
    (List.map fst (Checkpoint.Snapshot.list ~dir))

let test_corrupt_read () =
  let dir = fresh_dir "corrupt-read" in
  let path = write_exn ~dir (sample 1) in
  with_faults
    (Guard.Faults.with_io ~corrupt_every:1 Guard.Faults.none)
    (fun () -> check_read_error "bad-checksum" path);
  (* The corruption is injected at read time; the file itself is intact. *)
  ignore (read_exn path)

(* ------------------------------------------------------------------ *)
(* Codec round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let test_codec_fields () =
  let module C = Checkpoint.Codec in
  let cases = [ []; [ "" ]; [ "a b"; ""; "c:d;(e)"; "1:x" ] ] in
  List.iter
    (fun fs -> Alcotest.(check (list string)) "fields" fs (C.fields (C.concat fs)))
    cases;
  Alcotest.(check int) "int round-trip" (-42) (C.int_of_string "-42");
  (match C.int_of_string "xyz" with
  | exception C.Error _ -> ()
  | n -> Alcotest.failf "garbage int decoded to %d" n);
  match C.term_of_string "garbage" with
  | exception C.Error _ -> ()
  | _ -> Alcotest.fail "garbage term decoded"

(* Stability under re-encode is the right check for hash-consed values:
   decoding re-interns through the constructors, so a second encode must
   reproduce the exact string. *)
let rt_stable name enc dec v =
  let s = enc v in
  Alcotest.(check string) name s (enc (dec s))

let test_codec_logic_roundtrips () =
  let module C = Checkpoint.Codec in
  let x = Term.var "x" and a = Term.const "a" in
  rt_stable "var" C.term_to_string C.term_of_string x;
  rt_stable "const" C.term_to_string C.term_of_string a;
  let atom = Atom.make Theories.Zoo.g2 [ x; a ] in
  rt_stable "atom" C.atom_to_string C.atom_of_string atom;
  let _, _, phi = Theories.Zoo.phi_r 2 in
  rt_stable "cq" C.cq_to_string C.cq_of_string phi;
  List.iter
    (fun r -> rt_stable "rule" C.rule_to_string C.rule_of_string r)
    (Theory.rules Theories.Zoo.t_d);
  (* Skolem (App) terms: chase t_d a step and round-trip every derived
     atom, existential witnesses included. *)
  let _, _, d = Theories.Instances.path Theories.Zoo.g2 2 in
  let run = Chase.Engine.run ~max_depth:2 Theories.Zoo.t_d d in
  List.iter
    (fun at -> rt_stable "chased atom" C.atom_to_string C.atom_of_string at)
    (Fact_set.atoms (Chase.Engine.result run))

let test_codec_theory_chases_identically () =
  let module C = Checkpoint.Codec in
  let decoded = C.theory_of_lines (C.theory_to_lines Theories.Zoo.t_d) in
  let _, _, d = Theories.Instances.path Theories.Zoo.g2 3 in
  let a = Chase.Engine.run ~max_depth:4 Theories.Zoo.t_d d
  and b = Chase.Engine.run ~max_depth:4 decoded d in
  Alcotest.(check bool)
    "decoded theory chases to the same facts" true
    (Fact_set.equal (Chase.Engine.result a) (Chase.Engine.result b))

(* The capture-prevention regression (observed live: a resumed rewriting
   silently under-approximated): decoding a [prefix#n] variable must
   advance the fresh-variable counter past [n]. *)
let test_codec_reserves_fresh () =
  let module C = Checkpoint.Codec in
  let high = 1_000_000 in
  let name = Printf.sprintf "zz#%d" high in
  ignore (C.term_of_string (C.term_to_string (Term.var name)));
  match (Cq.fresh_var ~prefix:"zz" ()).Term.view with
  | Term.Var fresh ->
      let suffix =
        int_of_string
          (String.sub fresh
             (String.rindex fresh '#' + 1)
             (String.length fresh - String.rindex fresh '#' - 1))
      in
      Alcotest.(check bool)
        (Printf.sprintf "fresh %s minted past the decoded %s" fresh name)
        true (suffix > high)
  | _ -> Alcotest.fail "fresh_var did not return a variable"

(* ------------------------------------------------------------------ *)
(* Atomic plain-file writes                                            *)
(* ------------------------------------------------------------------ *)

let test_atomic_io () =
  let dir = fresh_dir "atomic" in
  let path = Filename.concat dir "out.json" in
  Checkpoint.Atomic_io.write_file path "first\n";
  Alcotest.(check string) "content lands" "first\n" (slurp path);
  Checkpoint.Atomic_io.write_file path "second\n";
  Alcotest.(check string) "overwrite replaces" "second\n" (slurp path);
  Alcotest.(check (list string))
    "no temp files left behind" [ "out.json" ]
    (Array.to_list (Sys.readdir dir))

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let test_supervisor_retries_then_succeeds () =
  let dir = fresh_dir "sup-retry" in
  let calls = ref 0 in
  let result, report =
    Checkpoint.Supervisor.run ~max_attempts:5 ~base_backoff_s:1e-4
      ~max_backoff_s:1e-3 ~dir (fun ~resume ->
        incr calls;
        Alcotest.(check bool) "cold start" true (resume = None);
        if !calls < 3 then failwith "transient";
        !calls)
  in
  (match result with
  | Ok n -> Alcotest.(check int) "third attempt's value" 3 n
  | Error e -> Alcotest.failf "supervisor gave up: %s" (Printexc.to_string e));
  Alcotest.(check int) "attempts" 3 report.Checkpoint.Supervisor.attempts;
  Alcotest.(check int) "cold starts" 3 report.Checkpoint.Supervisor.cold_starts;
  Alcotest.(check bool)
    "no resume round" true
    (report.Checkpoint.Supervisor.resumed_round = None)

let test_supervisor_resumes_newest () =
  let dir = fresh_dir "sup-resume" in
  List.iter (fun r -> ignore (write_exn ~dir (sample r))) [ 1; 2 ];
  let result, report =
    Checkpoint.Supervisor.run ~dir (fun ~resume ->
        match resume with
        | Some t -> t.Checkpoint.Snapshot.round
        | None -> Alcotest.fail "expected a snapshot")
  in
  Alcotest.(check bool) "ran once" true (result = Ok 2);
  Alcotest.(check bool)
    "report names the round" true
    (report.Checkpoint.Supervisor.resumed_round = Some 2)

let test_supervisor_degrades_past_corruption () =
  let dir = fresh_dir "sup-degrade" in
  List.iter (fun r -> ignore (write_exn ~dir (sample r))) [ 1; 2 ];
  flip_last_byte (snd (List.hd (Checkpoint.Snapshot.list ~dir)));
  let result, report =
    Checkpoint.Supervisor.run ~dir (fun ~resume ->
        match resume with
        | Some t -> t.Checkpoint.Snapshot.round
        | None -> Alcotest.fail "expected degradation, not cold start")
  in
  Alcotest.(check bool) "resumed round 1" true (result = Ok 1);
  Alcotest.(check int)
    "rejection reported" 1 report.Checkpoint.Supervisor.rejected_snapshots

let test_supervisor_gives_up () =
  let dir = fresh_dir "sup-exhaust" in
  let result, report =
    Checkpoint.Supervisor.run ~max_attempts:3 ~base_backoff_s:1e-4
      ~max_backoff_s:1e-3 ~dir (fun ~resume:_ -> failwith "always down")
  in
  (match result with
  | Error (Failure m) -> Alcotest.(check string) "last exception" "always down" m
  | Error e -> Alcotest.failf "unexpected %s" (Printexc.to_string e)
  | Ok _ -> Alcotest.fail "succeeded against an always-failing run");
  Alcotest.(check int) "all attempts used" 3 report.Checkpoint.Supervisor.attempts

let test_supervisor_should_retry () =
  let dir = fresh_dir "sup-transient" in
  let calls = ref 0 in
  let result, report =
    Checkpoint.Supervisor.run ~max_attempts:5 ~base_backoff_s:1e-4
      ~max_backoff_s:1e-3
      ~should_retry:(fun n -> n < 2)
      ~dir
      (fun ~resume:_ ->
        incr calls;
        !calls)
  in
  Alcotest.(check bool) "accepted the second value" true (result = Ok 2);
  Alcotest.(check int) "retried once" 2 report.Checkpoint.Supervisor.attempts

(* ------------------------------------------------------------------ *)
(* Resume differentials against uninterrupted references               *)
(* ------------------------------------------------------------------ *)

(* Chase: T_d over G^4. Small enough that replaying from every snapshot
   round stays quick, deep enough (recursive loop rule) that the run
   hits max_depth rather than saturating, so a final snapshot lands. *)
let chase_depth = 5
let chase_instance =
  lazy (let _, _, d = Theories.Instances.path Theories.Zoo.g2 4 in d)

let chase_ref =
  lazy
    (Chase.Engine.run ~max_depth:chase_depth Theories.Zoo.t_d
       (Lazy.force chase_instance))

let chase_snaps =
  lazy
    (let dir = fresh_dir "chase-cadence" in
     let sink = Checkpoint.sink ~every:1 ~min_interval_s:0. ~keep:1000 dir in
     ignore
       (Chase.Engine.run ~max_depth:chase_depth ~checkpoint:sink
          Theories.Zoo.t_d (Lazy.force chase_instance));
     Checkpoint.Snapshot.list ~dir)

let chase_runs_identical a b =
  Chase.Engine.depth a = Chase.Engine.depth b
  && Chase.Engine.saturated a = Chase.Engine.saturated b
  &&
  let ok = ref true in
  for i = 0 to Chase.Engine.depth a do
    if not (Fact_set.equal (Chase.Engine.stage a i) (Chase.Engine.stage b i))
    then ok := false
  done;
  !ok

let test_chase_resume_every_round () =
  let snaps = Lazy.force chase_snaps in
  Alcotest.(check bool)
    "cadence produced several snapshots" true
    (List.length snaps >= 3);
  List.iter
    (fun (round, path) ->
      let resumed = Chase.Engine.resume (read_exn path) in
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical stages resuming from round %d" round)
        true
        (chase_runs_identical (Lazy.force chase_ref) resumed))
    snaps

let test_chase_resume_pool4 () =
  let _, path = List.hd (Lazy.force chase_snaps) in
  let resumed = Chase.Engine.resume ~pool:pool4 (read_exn path) in
  Alcotest.(check bool)
    "bit-identical stages at -j4" true
    (chase_runs_identical (Lazy.force chase_ref) resumed)

(* Rewriting: the Example 28 tower at K = 3 with a boolean E_0 query —
   the same workload the crash harness kills for real. *)
let rw_theory = lazy (Theories.Zoo.t_e28 3)

let rw_query =
  lazy
    (Cq.make ~free:[]
       [ Atom.make (Theories.Zoo.e_k 0) [ Term.var "x"; Term.var "y" ] ])

let rw_ref =
  lazy (Rewriting.Rewrite.rewrite (Lazy.force rw_theory) (Lazy.force rw_query))

let rw_snaps =
  lazy
    (let dir = fresh_dir "rw-cadence" in
     let sink = Checkpoint.sink ~every:1 ~min_interval_s:0. ~keep:1000 dir in
     ignore
       (Rewriting.Rewrite.rewrite ~checkpoint:sink (Lazy.force rw_theory)
          (Lazy.force rw_query));
     Checkpoint.Snapshot.list ~dir)

let rw_resume_matches ?pool path =
  let resumed = Rewriting.Rewrite.resume ?pool (read_exn path) in
  let reference = Lazy.force rw_ref in
  (reference.Rewriting.Rewrite.outcome = Rewriting.Rewrite.Complete)
  = (resumed.Rewriting.Rewrite.outcome = Rewriting.Rewrite.Complete)
  && Ucq.equivalent reference.Rewriting.Rewrite.ucq
       resumed.Rewriting.Rewrite.ucq

let test_rewrite_resume_every_round () =
  let snaps = Lazy.force rw_snaps in
  Alcotest.(check bool)
    "cadence produced several snapshots" true
    (List.length snaps >= 2);
  List.iter
    (fun (round, path) ->
      Alcotest.(check bool)
        (Printf.sprintf "UCQ-equivalent resuming from round %d" round)
        true (rw_resume_matches path))
    snaps

(* QCheck differential: a random snapshot round, resumed sequentially or
   on a 4-domain pool, is always UCQ-equivalent to the uninterrupted
   reference. *)
let prop_rewrite_resume_any_round =
  QCheck.Test.make ~count:10
    ~name:"rewrite: resume from a random snapshot round (-j1/-j4)"
    QCheck.(pair (int_bound 10_000) bool)
    (fun (i, parallel) ->
      let snaps = Lazy.force rw_snaps in
      let _, path = List.nth snaps (i mod List.length snaps) in
      rw_resume_matches ?pool:(if parallel then Some pool4 else None) path)

(* Marked process: phi_R^3. The store snapshot carries the full
   iso-dedup seen-set, so resuming must neither re-admit processed
   queries nor lose collected ones. *)
let marked_query = lazy (let _, _, phi = Theories.Zoo.phi_r 3 in phi)
let marked_ref = lazy (Marked.Process.rewrite_td (Lazy.force marked_query))

let marked_snaps =
  lazy
    (let dir = fresh_dir "marked-cadence" in
     let sink = Checkpoint.sink ~every:25 ~min_interval_s:0. ~keep:1000 dir in
     ignore
       (Marked.Process.rewrite_td ~checkpoint:sink (Lazy.force marked_query));
     Checkpoint.Snapshot.list ~dir)

let marked_resume_matches ?pool path =
  let resumed = Marked.Process.resume ?pool (read_exn path) in
  let reference = Lazy.force marked_ref in
  reference.Marked.Process.complete = resumed.Marked.Process.complete
  && Ucq.equivalent reference.Marked.Process.rewriting
       resumed.Marked.Process.rewriting
  && List.length reference.Marked.Process.trivial
     = List.length resumed.Marked.Process.trivial
  && List.length reference.Marked.Process.aliased
     = List.length resumed.Marked.Process.aliased

let test_marked_resume () =
  let snaps = Lazy.force marked_snaps in
  Alcotest.(check bool)
    "cadence produced several snapshots" true
    (List.length snaps >= 2);
  (* Newest, middle, oldest: replaying every round would be slow; the
     crash harness covers random interior rounds with real kills. *)
  let picks =
    let n = List.length snaps in
    List.sort_uniq compare [ 0; n / 2; n - 1 ]
  in
  List.iter
    (fun i ->
      let round, path = List.nth snaps i in
      Alcotest.(check bool)
        (Printf.sprintf "equivalent resuming from round %d" round)
        true (marked_resume_matches path))
    picks

let test_marked_resume_pool4 () =
  let _, path = List.hd (Lazy.force marked_snaps) in
  Alcotest.(check bool)
    "equivalent at -j4" true
    (marked_resume_matches ~pool:pool4 path)

let test_resume_wrong_kind_rejected () =
  let _, path = List.hd (Lazy.force chase_snaps) in
  let snap = read_exn path in
  match Rewriting.Rewrite.resume snap with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rewrite engine accepted a chase snapshot"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "checkpoint"
    [
      ( "snapshot",
        [
          Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "rejections" `Quick test_snapshot_rejections;
          Alcotest.test_case "list + load_latest degrade" `Quick
            test_list_and_load_latest;
          Alcotest.test_case "sink prunes to keep" `Quick test_sink_prunes;
        ] );
      ( "faults",
        [
          Alcotest.test_case "torn write fails its checksum" `Quick
            test_torn_write;
          Alcotest.test_case "failed fsync abandons the write" `Quick
            test_enospc_write;
          Alcotest.test_case "corrupt read caught by checksum" `Quick
            test_corrupt_read;
        ] );
      ( "codec",
        [
          Alcotest.test_case "fields + scalars" `Quick test_codec_fields;
          Alcotest.test_case "logic round-trips" `Quick
            test_codec_logic_roundtrips;
          Alcotest.test_case "decoded theory chases identically" `Quick
            test_codec_theory_chases_identically;
          Alcotest.test_case "decoding reserves fresh names" `Quick
            test_codec_reserves_fresh;
        ] );
      ( "atomic-io",
        [ Alcotest.test_case "write + overwrite" `Quick test_atomic_io ] );
      ( "supervisor",
        [
          Alcotest.test_case "retries then succeeds" `Quick
            test_supervisor_retries_then_succeeds;
          Alcotest.test_case "resumes newest snapshot" `Quick
            test_supervisor_resumes_newest;
          Alcotest.test_case "degrades past corruption" `Quick
            test_supervisor_degrades_past_corruption;
          Alcotest.test_case "gives up after max attempts" `Quick
            test_supervisor_gives_up;
          Alcotest.test_case "should_retry treats values as transient" `Quick
            test_supervisor_should_retry;
        ] );
      ( "resume",
        [
          Alcotest.test_case "chase: every round, bit-identical" `Quick
            test_chase_resume_every_round;
          Alcotest.test_case "chase: -j4 resume" `Quick test_chase_resume_pool4;
          Alcotest.test_case "rewrite: every round, UCQ-equivalent" `Quick
            test_rewrite_resume_every_round;
          QCheck_alcotest.to_alcotest prop_rewrite_resume_any_round;
          Alcotest.test_case "marked: store-preserving resume" `Quick
            test_marked_resume;
          Alcotest.test_case "marked: -j4 resume" `Quick
            test_marked_resume_pool4;
          Alcotest.test_case "wrong snapshot kind rejected" `Quick
            test_resume_wrong_kind_rejected;
        ] );
    ]

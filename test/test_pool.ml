(* Unit tests for the sharded work-stealing pool: the pure scheduler
   internals (shard slicing, probe order), the steal paths (empty
   victims, dead workers), the [exists] early exit, the busy-time
   accounting under concurrent readers, and the [FRONTIER_JOBS]
   plumbing. The cross-scheduling determinism properties live in
   test_properties.ml; these tests pin the mechanisms. *)

open Parallel

(* These tests pin the fan-out mechanisms themselves (stealing, dead
   workers, busy accounting), so the cost gate — which would route these
   deliberately tiny batches inline, especially on a one-core CI box —
   is disabled for the whole suite. *)
let () = Pool.set_cost_gate false
let pool4 = Pool.create 4

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Pure scheduler internals                                            *)
(* ------------------------------------------------------------------ *)

let test_shard_bounds_partition () =
  List.iter
    (fun (n, size) ->
      let bounds = Pool.Internal.shard_bounds ~n ~size in
      Alcotest.(check int)
        (Printf.sprintf "n=%d size=%d: one shard per worker" n size)
        size (Array.length bounds);
      (* Contiguous cover of [0, n): each shard starts where the previous
         ended, the first starts at 0, the last ends at n. *)
      let expected_lo = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          Alcotest.(check int) "contiguous" !expected_lo lo;
          Alcotest.(check bool) "non-negative width" true (hi >= lo);
          expected_lo := hi)
        bounds;
      Alcotest.(check int) "covers [0, n)" n !expected_lo;
      (* Balance: widths differ by at most one, larger shards first. *)
      let widths = Array.to_list (Array.map (fun (lo, hi) -> hi - lo) bounds) in
      let wmin = List.fold_left min n widths
      and wmax = List.fold_left max 0 widths in
      Alcotest.(check bool)
        (Printf.sprintf "balanced (widths %d..%d)" wmin wmax)
        true
        (wmax - wmin <= 1))
    [
      (0, 1); (0, 4); (1, 4); (3, 4); (4, 4); (5, 4); (7, 3); (100, 1);
      (100, 4); (101, 4); (103, 4); (17, 16);
    ]

let test_probe_order () =
  List.iter
    (fun (worker, shards) ->
      let order = Pool.Internal.probe_order ~worker ~shards in
      Alcotest.(check int) "visits every shard" shards (List.length order);
      Alcotest.(check (option int))
        "own shard first" (Some worker)
        (match order with k :: _ -> Some k | [] -> None);
      (* Each shard exactly once: no self-steal, no double visit. *)
      Alcotest.(check (list int))
        "a permutation of 0..shards-1" (List.init shards Fun.id)
        (List.sort Int.compare order))
    [ (0, 1); (0, 4); (1, 4); (3, 4); (2, 7) ]

(* ------------------------------------------------------------------ *)
(* Map correctness, including empty-victim steals                      *)
(* ------------------------------------------------------------------ *)

let test_map_matches_sequential () =
  (* Sizes below the worker count leave some shards empty from the
     start, so finishing the job requires probing empty victims. *)
  List.iter
    (fun n ->
      let tasks = Array.init n (fun i -> i) in
      let expected = Array.map (fun i -> (i * i) + 1) tasks in
      let got = Pool.map_array pool4 (fun i -> (i * i) + 1) tasks in
      Alcotest.(check (array int))
        (Printf.sprintf "n=%d" n)
        expected got)
    [ 0; 1; 2; 3; 5; 16; 1000 ]

let test_task_errors_lists_failing_indices () =
  let tasks = Array.init 20 (fun i -> i) in
  match
    Pool.map_array pool4
      (fun i -> if i mod 3 = 0 then failwith "boom" else i)
      tasks
  with
  | _ -> Alcotest.fail "expected Task_errors"
  | exception Pool.Task_errors errors ->
      Alcotest.(check (list int))
        "exactly the deterministic failures"
        [ 0; 3; 6; 9; 12; 15; 18 ]
        (List.map (fun (i, _, _) -> i) errors)

(* ------------------------------------------------------------------ *)
(* Dead-worker steal-rescue                                            *)
(* ------------------------------------------------------------------ *)

let test_dead_worker_rescue () =
  (* Pick a fault schedule that kills workers (any seed whose derived
     schedule has an active death period). Worker deaths abandon one
     claimed index each — the coordinator rescues those — while the
     dead worker's remaining shard must be stolen by the survivors; the
     result has to come out identical to the sequential map anyway. *)
  let die_seed =
    let rec find s =
      if s > 10_000 then Alcotest.fail "no die-active fault seed found"
      else if
        contains_sub
          (Guard.Faults.describe (Guard.Faults.of_seed s))
          "worker death"
      then s
      else find (s + 1)
    in
    find 1
  in
  Fun.protect
    ~finally:(fun () -> Guard.Faults.install Guard.Faults.none)
    (fun () ->
      Guard.Faults.install (Guard.Faults.of_seed die_seed);
      let tasks = Array.init 500 (fun i -> i) in
      let got = Pool.map_array pool4 (fun i -> i * 7) tasks in
      Alcotest.(check (array int))
        "all indices survive worker deaths"
        (Array.map (fun i -> i * 7) tasks)
        got)

(* ------------------------------------------------------------------ *)
(* [exists]: genuine early exit                                        *)
(* ------------------------------------------------------------------ *)

let test_exists_verdicts () =
  let tasks = Array.init 100 (fun i -> i) in
  Alcotest.(check bool)
    "witness present" true
    (Pool.exists pool4 (fun i -> i = 73) tasks);
  Alcotest.(check bool)
    "no witness" false
    (Pool.exists pool4 (fun i -> i > 1000) tasks);
  Alcotest.(check bool)
    "empty array" false
    (Pool.exists pool4 (fun _ -> true) [||])

let test_exists_early_exit () =
  (* Put a witness at the first index of every shard: whichever domain
     gets scheduled first finds one on its very first claim, so no
     domain ever invokes the predicate on a second task — the
     invocation count is bounded by the pool size, not the task count. *)
  let n = 10_000 in
  let size = Pool.size pool4 in
  let starts =
    Array.to_list
      (Array.map fst (Pool.Internal.shard_bounds ~n ~size))
  in
  let tasks = Array.init n (fun i -> i) in
  let invocations = Atomic.make 0 in
  let found =
    Pool.exists pool4
      (fun i ->
        Atomic.incr invocations;
        List.mem i starts)
      tasks
  in
  Alcotest.(check bool) "found" true found;
  let inv = Atomic.get invocations in
  if inv > size then
    Alcotest.failf
      "predicate ran %d times for %d tasks (want <= pool size %d)" inv n
      size

let test_exists_no_witness_runs_all () =
  let n = 200 in
  let invocations = Atomic.make 0 in
  let found =
    Pool.exists pool4
      (fun _ ->
        Atomic.incr invocations;
        false)
      (Array.init n (fun i -> i))
  in
  Alcotest.(check bool) "not found" false found;
  Alcotest.(check int) "every task checked" n (Atomic.get invocations)

(* ------------------------------------------------------------------ *)
(* Busy accounting under a concurrent reader                           *)
(* ------------------------------------------------------------------ *)

let test_busy_times_concurrent_reader () =
  Pool.reset_busy pool4;
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let reads = ref 0 in
        while not (Atomic.get stop) do
          let b = Pool.busy_times pool4 in
          assert (Array.length b = Pool.size pool4);
          Array.iter (fun t -> assert (t >= 0.)) b;
          incr reads
        done;
        !reads)
  in
  let tasks = Array.init 2_000 (fun i -> i) in
  for _ = 1 to 5 do
    ignore (Pool.map_array pool4 (fun i -> i + 1) tasks)
  done;
  Atomic.set stop true;
  let reads = Domain.join reader in
  Alcotest.(check bool) "reader made progress" true (reads > 0);
  let busy = Pool.busy_times pool4 in
  Alcotest.(check int) "one slot per worker" (Pool.size pool4)
    (Array.length busy);
  Array.iter
    (fun t ->
      Alcotest.(check bool) "busy time is finite and non-negative" true
        (Float.is_finite t && t >= 0.))
    busy

let test_sequential_branch_busy () =
  (* The size-1 inline branch takes the same mutex as the workers; a
     private pool starts from a clean slate, so the accumulated busy
     time reflects only its own runs. *)
  let p = Pool.create 1 in
  let before = (Pool.busy_times p).(0) in
  Alcotest.(check (float 0.)) "fresh pool starts at zero" 0. before;
  ignore (Pool.map_array p (fun i -> i) (Array.init 100 Fun.id));
  let after = (Pool.busy_times p).(0) in
  Alcotest.(check bool) "inline run accumulates busy time" true
    (after >= 0.)

(* ------------------------------------------------------------------ *)
(* FRONTIER_JOBS parsing                                               *)
(* ------------------------------------------------------------------ *)

let test_jobs_from_env () =
  let with_env v f =
    let prev = Sys.getenv_opt "FRONTIER_JOBS" in
    Unix.putenv "FRONTIER_JOBS" v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "FRONTIER_JOBS"
          (match prev with Some s -> s | None -> ""))
      f
  in
  (* An empty value is not an integer: warns and falls back to 1, which
     also makes the save/restore above safe when the variable was unset
     ([putenv ""] is the closest OCaml gets to unsetting). *)
  List.iter
    (fun (v, expected) ->
      with_env v (fun () ->
          Alcotest.(check int)
            (Printf.sprintf "FRONTIER_JOBS=%S" v)
            expected (Pool.jobs_from_env ())))
    [
      ("3", 3); (" 4 ", 4); ("1", 1); ("0", 1); ("-2", 1); ("abc", 1);
      ("", 1);
    ]

let () =
  Alcotest.run "pool"
    [
      ( "scheduler",
        [
          Alcotest.test_case "shard bounds partition [0, n)" `Quick
            test_shard_bounds_partition;
          Alcotest.test_case "probe order: own shard first, no self-steal"
            `Quick test_probe_order;
        ] );
      ( "steal",
        [
          Alcotest.test_case "map = sequential map (incl. empty victims)"
            `Quick test_map_matches_sequential;
          Alcotest.test_case "Task_errors lists the failing indices" `Quick
            test_task_errors_lists_failing_indices;
          Alcotest.test_case "dead worker: orphan rescued, shard stolen"
            `Quick test_dead_worker_rescue;
        ] );
      ( "exists",
        [
          Alcotest.test_case "verdicts" `Quick test_exists_verdicts;
          Alcotest.test_case "early exit skips the tail" `Quick
            test_exists_early_exit;
          Alcotest.test_case "no witness checks everything" `Quick
            test_exists_no_witness_runs_all;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "busy_times under a concurrent reader" `Quick
            test_busy_times_concurrent_reader;
          Alcotest.test_case "size-1 pool accounts inline runs" `Quick
            test_sequential_branch_busy;
        ] );
      ( "config",
        [
          Alcotest.test_case "FRONTIER_JOBS parsing and warnings" `Quick
            test_jobs_from_env;
        ] );
    ]

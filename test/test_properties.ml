(* Property-based differential tests.

   Random single-head TGD theories, instances, and queries are drawn from
   int-encoded generators (plain tuples and lists, so QCheck's built-in
   shrinkers minimize counterexamples), then three implementations are
   played against each other:

   - a ~30-line naive reference chase (textbook fixpoint, no semi-naive
     deltas, no provenance) against [Chase.Engine.run];
   - the sequential engines against their [lib/parallel] counterparts at
     several domain counts (stages must be bit-identical, rewritings
     UCQ-equivalent);
   - rewriting-based answering against chase-based answering (the
     Theorem 1 contract), on random theories and on zoo-seeded instances.

   FRONTIER_QCHECK_COUNT scales the number of cases per property (default
   100; CI sets a smaller value to keep the suite fast). *)

open Logic

let count =
  match Sys.getenv_opt "FRONTIER_QCHECK_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 100)
  | None -> 100

(* Long-lived pools shared by all properties (domains are expensive). *)
let pool2 = Parallel.Pool.create 2
let pool3 = Parallel.Pool.create 3
let pool4 = Parallel.Pool.create 4

(* ------------------------------------------------------------------ *)
(* Generators: everything is encoded as ints so shrinking works        *)
(* ------------------------------------------------------------------ *)

let e = Symbol.make "E" ~arity:2
let r = Symbol.make "R" ~arity:2
let p = Symbol.make "P" ~arity:1
let const i = Term.const (Printf.sprintf "c%d" i)
let body_var i = Term.var (Printf.sprintf "x%d" (i mod 4))

let head_var i =
  (* 0..3 pick body variables, 4..5 existential ones. *)
  match i mod 6 with
  | j when j < 4 -> body_var j
  | j -> Term.var (Printf.sprintf "w%d" (j - 4))

(* An atom is (rel, v1, v2); rel mod 3 picks E/R/P, P ignores v2. Any
   int triple decodes to a well-formed atom, so shrunk values stay valid. *)
let decode_atom var (rel, a, b) =
  match rel mod 3 with
  | 0 -> Atom.make e [ var a; var b ]
  | 1 -> Atom.make r [ var a; var b ]
  | _ -> Atom.make p [ var a ]

let decode_rule i (body, head) =
  Tgd.make
    ~name:(Printf.sprintf "g%d" i)
    ~body:(List.map (decode_atom body_var) body)
    ~head:[ decode_atom head_var head ]
    ()

let decode_theory rules =
  Theory.make ~name:"gen" (List.mapi decode_rule rules)

let decode_instance (e_edges, r_edges, p_nodes) =
  Fact_set.of_list
    (List.map (fun (i, j) -> Atom.make e [ const i; const j ]) e_edges
    @ List.map (fun (i, j) -> Atom.make r [ const i; const j ]) r_edges
    @ List.map (fun i -> Atom.make p [ const i ]) p_nodes)

let decode_query atoms =
  (* Boolean query over a 3-variable pool (shared variables make joins). *)
  Cq.make ~free:[]
    (List.map (decode_atom (fun i -> body_var (i mod 3))) atoms)

let atom_arb = QCheck.(triple (int_bound 2) (int_bound 5) (int_bound 5))

let theory_arb =
  QCheck.(
    list_of_size Gen.(1 -- 4)
      (pair (list_of_size Gen.(1 -- 2) atom_arb) atom_arb))

let instance_arb =
  QCheck.(
    triple
      (list_of_size Gen.(0 -- 6) (pair (int_bound 4) (int_bound 4)))
      (list_of_size Gen.(0 -- 3) (pair (int_bound 4) (int_bound 4)))
      (list_of_size Gen.(0 -- 3) (int_bound 4)))

let query_arb = QCheck.(list_of_size Gen.(1 -- 2) atom_arb)

(* ------------------------------------------------------------------ *)
(* The naive reference chase: a direct reading of Definition 6         *)
(* ------------------------------------------------------------------ *)

(* Every stage recomputes every trigger over the whole structure — no
   deltas, no indexes to get wrong. Returns the stages (element i is
   Ch_i) and whether a fixpoint was reached within [max_stages]. *)
let naive_chase ~max_stages theory d =
  let rec go current n acc =
    if n = 0 then (List.rev acc, false)
    else begin
      let additions = ref [] in
      List.iter
        (fun rule ->
          Tgd.triggers rule current (fun sigma ->
              List.iter
                (fun a ->
                  if not (Fact_set.mem a current) then
                    additions := a :: !additions)
                (Tgd.apply rule sigma)))
        (Theory.rules theory);
      if !additions = [] then (List.rev acc, true)
      else
        let next = Fact_set.union current (Fact_set.of_list !additions) in
        go next (n - 1) (next :: acc)
    end
  in
  let stages, saturated = go d max_stages [ d ] in
  (stages, saturated)

let max_depth = 3
let max_atoms = 30_000

let prop_engine_matches_naive_reference =
  QCheck.Test.make ~count
    ~name:"semi-naive engine stages = naive reference chase stages"
    QCheck.(pair theory_arb instance_arb)
    (fun (trules, inst) ->
      let theory = decode_theory trules in
      let d = decode_instance inst in
      let run = Chase.Engine.run ~max_depth ~max_atoms theory d in
      QCheck.assume (not (Chase.Engine.hit_atom_budget run));
      let stages, naive_saturated =
        naive_chase ~max_stages:max_depth theory d
      in
      List.length stages = Chase.Engine.depth run + 1
      && Chase.Engine.saturated run = naive_saturated
      && List.for_all2 Fact_set.equal stages
           (List.init (Chase.Engine.depth run + 1) (Chase.Engine.stage run)))

(* ------------------------------------------------------------------ *)
(* Parallel vs sequential: the determinism contracts                   *)
(* ------------------------------------------------------------------ *)

let same_derivations run_a run_b atom =
  let names ders = List.map (fun (rule, _) -> Tgd.name rule) ders in
  names (Chase.Engine.derivations run_a atom)
  = names (Chase.Engine.derivations run_b atom)

let prop_parallel_chase_deterministic =
  QCheck.Test.make ~count
    ~name:"chase at -j1/-j2/-j4: identical stages, flags, provenance"
    QCheck.(pair theory_arb instance_arb)
    (fun (trules, inst) ->
      let theory = decode_theory trules in
      let d = decode_instance inst in
      let seq = Chase.Engine.run ~max_depth ~max_atoms theory d in
      List.for_all
        (fun pool ->
          let par = Chase.Engine.run ~pool ~max_depth ~max_atoms theory d in
          Chase.Engine.depth par = Chase.Engine.depth seq
          && Chase.Engine.saturated par = Chase.Engine.saturated seq
          && Chase.Engine.hit_atom_budget par
             = Chase.Engine.hit_atom_budget seq
          && List.for_all
               (fun i ->
                 Fact_set.equal
                   (Chase.Engine.stage seq i)
                   (Chase.Engine.stage par i))
               (List.init (Chase.Engine.depth seq + 1) Fun.id)
          && List.for_all (same_derivations seq par)
               (Fact_set.atoms (Chase.Engine.result seq)))
        [ pool2; pool4 ])

let prop_parallel_oblivious_deterministic =
  QCheck.Test.make ~count
    ~name:"oblivious chase with a pool = without"
    QCheck.(pair theory_arb instance_arb)
    (fun (trules, inst) ->
      let theory = decode_theory trules in
      let d = decode_instance inst in
      let seq =
        Chase.Variants.run_oblivious ~max_depth ~max_atoms theory d
      in
      let par =
        Chase.Variants.run_oblivious ~pool:pool3 ~max_depth ~max_atoms theory
          d
      in
      seq.Chase.Variants.steps = par.Chase.Variants.steps
      && seq.Chase.Variants.saturated = par.Chase.Variants.saturated
      && Fact_set.equal seq.Chase.Variants.facts par.Chase.Variants.facts)

let rewrite_budget =
  {
    Rewriting.Rewrite.max_disjuncts = 40;
    max_atoms_per_disjunct = 12;
    max_steps = 150;
  }

let prop_parallel_rewriting_equivalent =
  QCheck.Test.make ~count
    ~name:"rewriting at -j1 and -j3: UCQ-equivalent when both complete"
    QCheck.(pair theory_arb query_arb)
    (fun (trules, qatoms) ->
      let theory = decode_theory trules in
      let q = decode_query qatoms in
      let seq = Rewriting.Rewrite.rewrite ~budget:rewrite_budget theory q in
      let par =
        Rewriting.Rewrite.rewrite ~pool:pool3 ~budget:rewrite_budget theory q
      in
      match
        (seq.Rewriting.Rewrite.outcome, par.Rewriting.Rewrite.outcome)
      with
      | Rewriting.Rewrite.Complete, Rewriting.Rewrite.Complete ->
          Ucq.equivalent seq.Rewriting.Rewrite.ucq par.Rewriting.Rewrite.ucq
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Arena vs boxed: the flat-store/compiled-join differentials          *)
(* ------------------------------------------------------------------ *)

(* [Fact_set.set_arena] is the process-wide A/B switch between the boxed
   layers + backtracking homomorphism engine and the flat-arena layers +
   compiled register-machine join. The two must be observationally
   identical: bit-identical chase stages and provenance, equal
   homomorphism verdicts, UCQ-equivalent rewritings — at every [-j] and
   under fault injection. *)
let with_arena on f =
  let prev = Fact_set.arena_enabled () in
  Fact_set.set_arena on;
  Fun.protect ~finally:(fun () -> Fact_set.set_arena prev) f

let prop_arena_chase_matches_boxed =
  QCheck.Test.make ~count
    ~name:"arena chase = boxed chase (stages, flags, provenance; j1, j4)"
    QCheck.(pair theory_arb instance_arb)
    (fun (trules, inst) ->
      let theory = decode_theory trules in
      let d = decode_instance inst in
      let boxed =
        with_arena false (fun () ->
            Chase.Engine.run ~max_depth ~max_atoms theory d)
      in
      List.for_all
        (fun pool ->
          let ar =
            with_arena true (fun () ->
                Chase.Engine.run ?pool ~max_depth ~max_atoms theory d)
          in
          Chase.Engine.depth ar = Chase.Engine.depth boxed
          && Chase.Engine.saturated ar = Chase.Engine.saturated boxed
          && Chase.Engine.hit_atom_budget ar
             = Chase.Engine.hit_atom_budget boxed
          && List.for_all
               (fun i ->
                 Fact_set.equal (Chase.Engine.stage ar i)
                   (Chase.Engine.stage boxed i))
               (List.init (Chase.Engine.depth boxed + 1) Fun.id)
          && List.for_all (same_derivations boxed ar)
               (Fact_set.atoms (Chase.Engine.result boxed)))
        [ None; Some pool4 ])

let prop_arena_hom_matches_boxed =
  QCheck.Test.make ~count
    ~name:"Cq.boolean_holds: compiled join = boxed backtracking engine"
    QCheck.(pair query_arb instance_arb)
    (fun (qatoms, inst) ->
      let q = decode_query qatoms in
      let d = decode_instance inst in
      Bool.equal
        (with_arena true (fun () -> Cq.boolean_holds q d))
        (with_arena false (fun () -> Cq.boolean_holds q d)))

let prop_arena_rewriting_equivalent =
  QCheck.Test.make ~count
    ~name:"arena rewriting = boxed rewriting (UCQ-equivalent; j1, j4)"
    QCheck.(pair theory_arb query_arb)
    (fun (trules, qatoms) ->
      let theory = decode_theory trules in
      let q = decode_query qatoms in
      let boxed =
        with_arena false (fun () ->
            Rewriting.Rewrite.rewrite ~budget:rewrite_budget theory q)
      in
      List.for_all
        (fun pool ->
          let ar =
            with_arena true (fun () ->
                Rewriting.Rewrite.rewrite ?pool ~budget:rewrite_budget
                  theory q)
          in
          match
            (boxed.Rewriting.Rewrite.outcome, ar.Rewriting.Rewrite.outcome)
          with
          | Rewriting.Rewrite.Complete, Rewriting.Rewrite.Complete ->
              Ucq.equivalent boxed.Rewriting.Rewrite.ucq
                ar.Rewriting.Rewrite.ucq
          | _ -> true)
        [ None; Some pool4 ])

(* Zoo-seeded: every closed zoo theory chased on random instances drawn
   from its own signature, arena against boxed, sequential and -j4. *)
let zoo_theories =
  Theories.Zoo.
    [
      t_a; t_p; t_loopcut; t_sticky; t_nonbdd; t_c; t_d; t_d_noloop;
      t_spouse; t_ex66;
    ]

let theory_signature theory =
  List.sort_uniq Symbol.compare
    (List.concat_map
       (fun r -> List.map Atom.rel (Tgd.body r @ Tgd.head r))
       (Theory.rules theory))

let decode_zoo_instance theory triples =
  let sig_ = Array.of_list (theory_signature theory) in
  Fact_set.of_list
    (List.map
       (fun (s, a, b) ->
         let rel = sig_.(s mod Array.length sig_) in
         let args =
           List.init (Symbol.arity rel) (fun i ->
               const ((if i = 0 then a else b) mod 5))
         in
         Atom.make rel args)
       triples)

let prop_arena_zoo_chase_matches_boxed =
  QCheck.Test.make ~count
    ~name:"zoo theories: arena chase = boxed chase on random instances"
    QCheck.(
      pair (int_bound 1000)
        (list_of_size Gen.(1 -- 6)
           (triple (int_bound 20) (int_bound 4) (int_bound 4))))
    (fun (pick, triples) ->
      let theory = List.nth zoo_theories (pick mod List.length zoo_theories) in
      let d = decode_zoo_instance theory triples in
      let boxed =
        with_arena false (fun () ->
            Chase.Engine.run ~max_depth ~max_atoms theory d)
      in
      List.for_all
        (fun pool ->
          let ar =
            with_arena true (fun () ->
                Chase.Engine.run ?pool ~max_depth ~max_atoms theory d)
          in
          Chase.Engine.depth ar = Chase.Engine.depth boxed
          && List.for_all
               (fun i ->
                 Fact_set.equal (Chase.Engine.stage ar i)
                   (Chase.Engine.stage boxed i))
               (List.init (Chase.Engine.depth boxed + 1) Fun.id))
        [ None; Some pool4 ])

(* ------------------------------------------------------------------ *)
(* The naive reference rewriting: a direct reading of Theorem 1        *)
(* ------------------------------------------------------------------ *)

(* One queue pop per step, [Ucq.add_minimal] as the store — no saturation
   kernel, no canon-id dedup, no liveness probe, no budgets beyond the
   pop count. Subsumed entries are expanded anyway (harmless: their
   rewritings are covered too). Returns [None] when [max_steps] pops did
   not drain the queue. *)
let naive_rewrite ~max_steps theory q =
  let compiled, aux = Rewriting.Single_head.compile theory in
  let queue = Queue.create () in
  let store = ref Ucq.empty in
  let push q' =
    let u, verdict = Ucq.add_minimal !store q' in
    store := u;
    if verdict = `Added then Queue.add q' queue
  in
  push (Containment.core_of_query q);
  let steps = ref 0 in
  let exception Out_of_steps in
  match
    while not (Queue.is_empty queue) do
      if !steps >= max_steps then raise Out_of_steps;
      incr steps;
      let cur = Queue.pop queue in
      List.iter push (Rewriting.Piece_unifier.one_step_theory cur compiled)
    done
  with
  | () ->
      Some
        (Ucq.of_list
           (List.filter
              (fun d -> not (Rewriting.Single_head.mentions_aux aux d))
              (Ucq.disjuncts !store)))
  | exception Out_of_steps -> None

let prop_kernel_rewriting_matches_naive_reference =
  (* The kernel-based saturation (both the size-1 pool's one-pop rounds
     and the -j4 batch-synchronous sweeps) must land on a UCQ equivalent
     to the naive queue/add_minimal reference whenever both complete. *)
  QCheck.Test.make ~count
    ~name:"kernel rewriting = naive queue/add_minimal reference (j1, j4)"
    QCheck.(pair theory_arb query_arb)
    (fun (trules, qatoms) ->
      let theory = decode_theory trules in
      let q = decode_query qatoms in
      match naive_rewrite ~max_steps:150 theory q with
      | None -> true
      | Some reference ->
          List.for_all
            (fun pool ->
              let r =
                Rewriting.Rewrite.rewrite ?pool ~budget:rewrite_budget theory
                  q
              in
              match r.Rewriting.Rewrite.outcome with
              | Rewriting.Rewrite.Complete ->
                  Ucq.equivalent reference r.Rewriting.Rewrite.ucq
              | _ -> true)
            [ None; Some pool4 ])

(* ------------------------------------------------------------------ *)
(* Subsumption index & decomposed containment vs the reference engines *)
(* ------------------------------------------------------------------ *)

(* CQs with 0-2 answer variables over the x0..x3 pool; the random mix
   naturally produces connected single-component bodies, disconnected
   bodies (distinct components through P/E/R atoms over disjoint
   variables), and ground-ish corner cases. *)
let decode_cq (atoms_enc, f0, f1) =
  let atoms = List.map (decode_atom body_var) atoms_enc in
  let vars = Term.Set.of_list (List.concat_map Atom.vars atoms) in
  let free =
    List.filter
      (fun v -> Term.Set.mem v vars)
      (List.concat
         [
           (if f0 then [ body_var 0 ] else []);
           (if f1 then [ body_var 1 ] else []);
         ])
  in
  Cq.make ~free atoms

let cq_arb =
  QCheck.(triple (list_of_size Gen.(1 -- 4) atom_arb) bool bool)

let with_indexing on f =
  let prev = Ucq_index.indexing_enabled () in
  Ucq_index.set_indexing on;
  Fun.protect ~finally:(fun () -> Ucq_index.set_indexing prev) f

let with_decomposition on f =
  let prev = Containment.decomposition_enabled () in
  Containment.set_decomposition on;
  Fun.protect ~finally:(fun () -> Containment.set_decomposition prev) f

let prop_indexed_store_matches_reference =
  (* The indexed UCQ store must reproduce the reference minimization
     *exactly* — same disjuncts in the same order, not just an
     equivalent set — both through the batch [of_list] and through
     incremental [add_minimal] chains. *)
  QCheck.Test.make ~count
    ~name:"Ucq store: indexed of_list/add_minimal = unindexed reference"
    QCheck.(list_of_size Gen.(0 -- 8) cq_arb)
    (fun encs ->
      let qs = List.map decode_cq encs in
      let batch on = with_indexing on (fun () -> Ucq.of_list qs) in
      let incremental on =
        with_indexing on (fun () ->
            List.fold_left
              (fun u q -> fst (Ucq.add_minimal u q))
              Ucq.empty qs)
      in
      let same u1 u2 =
        Ucq.cardinal u1 = Ucq.cardinal u2
        && List.for_all2 ( == ) (Ucq.disjuncts u1) (Ucq.disjuncts u2)
      in
      same (batch false) (batch true)
      && same (incremental false) (incremental true))

let prop_decomposed_implies_matches_monolithic =
  (* Gaifman-component decomposition (plus the fingerprint prescreen and
     the connectivity-driven seed ordering) must agree with the
     monolithic PR 2 solver on every verdict, in both directions. *)
  QCheck.Test.make ~count
    ~name:"Containment.implies: decomposed = monolithic, both directions"
    QCheck.(pair cq_arb cq_arb)
    (fun (enc1, enc2) ->
      let q1 = decode_cq enc1 and q2 = decode_cq enc2 in
      let verdicts on =
        with_decomposition on (fun () ->
            ( Containment.implies q1 q2,
              Containment.implies q2 q1,
              Containment.implies q1 q1 ))
      in
      verdicts false = verdicts true)

(* ------------------------------------------------------------------ *)
(* Theorem 1: answering via rewriting = answering via the chase        *)
(* ------------------------------------------------------------------ *)

let prop_rewriting_answers_like_chase =
  QCheck.Test.make ~count
    ~name:"boolean query: D |= rew(q) iff Ch(T,D) |= q (Theorem 1)"
    QCheck.(triple theory_arb instance_arb query_arb)
    (fun (trules, inst, qatoms) ->
      let theory = decode_theory trules in
      let d = decode_instance inst in
      let q = decode_query qatoms in
      let rew = Rewriting.Rewrite.rewrite ~budget:rewrite_budget theory q in
      match rew.Rewriting.Rewrite.outcome with
      | Rewriting.Rewrite.Complete ->
          let run = Chase.Engine.run ~max_depth:6 ~max_atoms theory d in
          (* Only a saturated chase decides certain answers exactly. *)
          QCheck.assume (Chase.Engine.saturated run);
          Bool.equal
            (Ucq.boolean_holds rew.Rewriting.Rewrite.ucq d)
            (Cq.boolean_holds q (Chase.Engine.result run))
      | _ -> true)

let prop_zoo_answering_agreement =
  (* Zoo-seeded: T_a over random Human courts, the mother query. The
     full answering pipelines must agree (and the parallel one with them). *)
  QCheck.Test.make ~count
    ~name:"T_a certain answers: chase pipeline = rewriting pipeline"
    QCheck.(list_of_size Gen.(1 -- 6) (int_bound 9))
    (fun people ->
      let d =
        Fact_set.of_list
          (List.map
             (fun i ->
               Atom.make Theories.Zoo.person
                 [ Term.const (Printf.sprintf "p%d" i) ])
             people)
      in
      let x = Term.var "x" and m = Term.var "m" in
      let q =
        Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.mother [ x; m ] ]
      in
      let via_chase =
        Frontier.certain_answers ~max_depth:3 Theories.Zoo.t_a d q
      in
      let via_rewriting =
        Frontier.answer_via_rewriting Theories.Zoo.t_a d q
      in
      let via_rewriting_par =
        Frontier.answer_via_rewriting ~pool:pool2 Theories.Zoo.t_a d q
      in
      let sort = List.sort (List.compare Term.compare) in
      match (via_rewriting, via_rewriting_par) with
      | Some a, Some b ->
          sort a = sort (via_chase : Term.t list list) && sort a = sort b
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* The portfolio selector vs the engines it routes between             *)
(* ------------------------------------------------------------------ *)

let portfolio_budget = rewrite_budget

let prop_portfolio_agrees_with_chase =
  (* Whatever strategy [Portfolio.plan] picks on a random theory, the
     answers [execute] marks exact must be exactly the chase's certain
     answers whenever the chase saturates — at -j1 and -j4. *)
  QCheck.Test.make ~count
    ~name:"portfolio execute = saturated chase certain answers (j1, j4)"
    QCheck.(triple theory_arb instance_arb query_arb)
    (fun (trules, inst, qatoms) ->
      let theory = decode_theory trules in
      let d = decode_instance inst in
      let q = decode_query qatoms in
      let plan = Portfolio.plan theory in
      let reference, ref_exact, _ =
        Portfolio.Strategy.chase_arm ~max_depth:6 ~max_atoms theory d q
      in
      List.for_all
        (fun pool ->
          let a =
            Portfolio.execute ?pool ~budget:portfolio_budget ~max_depth:6
              ~max_atoms plan theory d q
          in
          if a.Portfolio.Strategy.exact && ref_exact then
            Portfolio.Strategy.equal_answers a.Portfolio.Strategy.tuples
              reference
          else if ref_exact then
            (* Inexact answers are still sound: a subset of the certain
               answers the saturated chase computed. *)
            List.for_all
              (fun tuple -> List.exists (( = ) tuple) reference)
              a.Portfolio.Strategy.tuples
          else true)
        [ None; Some pool4 ])

let prop_portfolio_agrees_on_zoo_instances =
  (* Zoo-seeded: the portfolio routes T_a to rewriting; its answers must
     match the chase pipeline on random Human courts. *)
  QCheck.Test.make ~count
    ~name:"portfolio on T_a = chase pipeline on random instances"
    QCheck.(list_of_size Gen.(1 -- 6) (int_bound 9))
    (fun people ->
      let d =
        Fact_set.of_list
          (List.map
             (fun i ->
               Atom.make Theories.Zoo.human
                 [ Term.const (Printf.sprintf "h%d" i) ])
             people)
      in
      let x = Term.var "x" and m = Term.var "m" in
      let q =
        Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.mother [ x; m ] ]
      in
      let plan = Portfolio.plan Theories.Zoo.t_a in
      let a = Portfolio.execute plan Theories.Zoo.t_a d q in
      let via_chase =
        Portfolio.Strategy.normalize_tuples
          (Frontier.certain_answers ~max_depth:3 Theories.Zoo.t_a d q)
      in
      a.Portfolio.Strategy.exact
      && a.Portfolio.Strategy.used = Portfolio.Ucq_rewriting
      && Portfolio.Strategy.equal_answers a.Portfolio.Strategy.tuples
           via_chase)

(* ------------------------------------------------------------------ *)
(* Eval: the plan layer against the boxed reference                    *)
(* ------------------------------------------------------------------ *)

(* Same shape as [with_arena]: flip the plan-layer A/B switch for the
   duration of [f], restoring the previous setting on the way out. *)
let with_eval on f =
  let prev = Eval.eval_enabled () in
  Eval.set_eval on;
  Fun.protect ~finally:(fun () -> Eval.set_eval prev) f

(* Open queries: the second coordinate picks how many of the variables
   actually used become answer variables (0 = boolean). *)
let decode_open_query (atoms, nfree) =
  let atoms = List.map (decode_atom (fun i -> body_var (i mod 3))) atoms in
  let used =
    List.sort_uniq Term.compare
      (List.concat_map
         (fun a -> List.filter Term.is_var (Atom.args a))
         atoms)
  in
  let free =
    List.filteri (fun i _ -> i < nfree mod (List.length used + 1)) used
  in
  Cq.make ~free atoms

let open_query_arb =
  QCheck.(pair (list_of_size Gen.(1 -- 3) atom_arb) (int_bound 3))

(* Deterministic generator-built instances shared across cases: the
   seeds the eval acceptance criteria pin (1, 7, 42). *)
let eval_seed_instances =
  List.map
    (fun seed ->
      Fact_set.union
        (Theories.Instances.erdos_renyi e ~seed ~nodes:6 ~edges:14)
        (Theories.Instances.erdos_renyi r ~seed:(seed + 100) ~nodes:6
           ~edges:7))
    [ 1; 7; 42 ]

let equal_tuple_lists a b =
  List.compare (List.compare Term.compare) a b = 0

let prop_eval_answers_match_boxed =
  (* The core differential: Eval.run through a leapfrog plan, the same
     plan forced onto the legacy boxed enumeration, and Cq.answers must
     produce identical tuple lists — on random instances and on the
     pinned generator seeds. *)
  QCheck.Test.make ~count
    ~name:"Eval.answers: leapfrog = boxed enumeration = Cq.answers"
    QCheck.(pair open_query_arb instance_arb)
    (fun (qenc, inst) ->
      let q = decode_open_query qenc in
      List.for_all
        (fun d ->
          let on = with_eval true (fun () -> Eval.answers q d) in
          let off = with_eval false (fun () -> Eval.answers q d) in
          equal_tuple_lists on off && equal_tuple_lists on (Cq.answers q d))
        (decode_instance inst :: eval_seed_instances))

let prop_eval_ucq_matches_boxed =
  (* Union evaluation with cross-disjunct dedup against the boxed path.
     Every disjunct is anchored on E(x0, x1) so the free slot is shared
     and the disjuncts genuinely overlap. *)
  QCheck.Test.make ~count
    ~name:"Eval.ucq_answers: plan union = boxed union"
    QCheck.(triple query_arb query_arb instance_arb)
    (fun (a1, a2, inst) ->
      let disjunct atoms =
        Cq.make ~free:[ body_var 0 ]
          (Atom.make e [ body_var 0; body_var 1 ]
          :: List.map (decode_atom (fun i -> body_var (i mod 3))) atoms)
      in
      let u = Ucq.of_disjuncts_unchecked [ disjunct a1; disjunct a2 ] in
      List.for_all
        (fun d ->
          equal_tuple_lists
            (with_eval true (fun () -> Eval.ucq_answers u d))
            (with_eval false (fun () -> Eval.ucq_answers u d)))
        (decode_instance inst :: eval_seed_instances))

let prop_eval_zoo_certain_answers_agree =
  (* The [frontier answer] pipeline (Strategy -> rewrite -> evaluate)
     against chase-then-query across the theory zoo, sequential and -j4:
     exact claims must match exactly, inexact answers must be sound. *)
  QCheck.Test.make ~count
    ~name:"zoo certain answers: rewrite-then-evaluate = chase-then-query (j1, j4)"
    QCheck.(
      pair (int_bound 1000)
        (list_of_size Gen.(1 -- 5)
           (triple (int_bound 20) (int_bound 4) (int_bound 4))))
    (fun (pick, triples) ->
      let theory = List.nth zoo_theories (pick mod List.length zoo_theories) in
      let d = decode_zoo_instance theory triples in
      let sig_ = theory_signature theory in
      let rel =
        match List.find_opt (fun s -> Symbol.arity s > 0) sig_ with
        | Some s -> s
        | None -> e
      in
      let xq = Term.var "x" in
      let args =
        List.init (Symbol.arity rel) (fun i ->
            if i = 0 then xq else Term.var (Printf.sprintf "y%d" i))
      in
      let q = Cq.make ~free:[ xq ] [ Atom.make rel args ] in
      let reference, ref_exact, _ =
        Portfolio.Strategy.chase_arm ~max_depth:6 ~max_atoms theory d q
      in
      let plan = Portfolio.plan theory in
      List.for_all
        (fun pool ->
          let a =
            Portfolio.execute ?pool ~budget:portfolio_budget ~max_depth:6
              ~max_atoms plan theory d q
          in
          if a.Portfolio.Strategy.exact && ref_exact then
            Portfolio.Strategy.equal_answers a.Portfolio.Strategy.tuples
              reference
          else if ref_exact then
            List.for_all
              (fun tuple -> List.exists (( = ) tuple) reference)
              a.Portfolio.Strategy.tuples
          else true)
        [ None; Some pool4 ])

(* ------------------------------------------------------------------ *)
(* The pool primitives themselves                                      *)
(* ------------------------------------------------------------------ *)

let prop_pool_primitives =
  QCheck.Test.make ~count ~name:"pool map/filter/exists = List counterparts"
    QCheck.(list int)
    (fun l ->
      let f x = (x * 31) mod 1009 in
      let pred x = x mod 3 = 0 in
      List.for_all
        (fun pool ->
          Parallel.Pool.map_list pool f l = List.map f l
          && Parallel.Pool.filter_list pool pred l = List.filter pred l
          && Parallel.Pool.exists pool pred (Array.of_list l)
             = List.exists pred l)
        [ Parallel.Pool.sequential; pool2; pool4 ])

(* ------------------------------------------------------------------ *)
(* Fault injection: every Exhausted salvage path, under random seeds   *)
(* ------------------------------------------------------------------ *)

(* [Faults.forced_trip] is consulted by {e every} [Guard.check] — including
   the unlimited guards that guarded entry points create internally — so a
   fault-free reference run must execute under [Faults.none]. Each faulty
   run installs its schedule and uninstalls it again even on exceptions.
   The CI fault matrix sets FRONTIER_FAULTS to rotate the whole suite
   through different schedule families; it is mixed into every seed. *)
let fault_seed_base =
  match Sys.getenv_opt "FRONTIER_FAULTS" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
  | None -> 0

let with_faults seed f =
  Guard.Faults.install
    (Guard.Faults.of_seed (abs (seed + (65_537 * fault_seed_base))));
  Fun.protect ~finally:(fun () -> Guard.Faults.install Guard.Faults.none) f

let prop_faulty_chase_is_prefix =
  (* Whatever the schedule injects — task exceptions, worker deaths,
     simulated deadline/memory trips — the chase either completes with
     exactly the fault-free stages or stops early with a stage-exact
     prefix of them (aborted sweeps are discarded whole). *)
  QCheck.Test.make ~count
    ~name:"fault-injected chase = stage-exact prefix of fault-free chase"
    QCheck.(triple small_nat theory_arb instance_arb)
    (fun (seed, trules, inst) ->
      let theory = decode_theory trules and d = decode_instance inst in
      let reference = Chase.Engine.run ~max_depth ~max_atoms theory d in
      List.for_all
        (fun pool ->
          let run =
            with_faults (1 + seed) (fun () ->
                let guard = Guard.create () in
                Chase.Engine.run ~pool ~guard ~max_depth ~max_atoms theory d)
          in
          let dr = Chase.Engine.depth run in
          dr <= Chase.Engine.depth reference
          && List.for_all
               (fun i ->
                 Fact_set.equal (Chase.Engine.stage run i)
                   (Chase.Engine.stage reference i))
               (List.init (dr + 1) Fun.id)
          &&
          match Chase.Engine.interrupted run with
          | Some _ -> true
          | None ->
              (* No trip fired: the run must be indistinguishable from the
                 fault-free one (injected task faults are absorbed by the
                 pool's retry and orphan-rescue paths). *)
              dr = Chase.Engine.depth reference
              && Bool.equal (Chase.Engine.saturated run)
                   (Chase.Engine.saturated reference))
        [ Parallel.Pool.sequential; pool2; pool4 ])

let prop_faulty_rewriting_is_sound =
  (* A rewriting interrupted by a guard trip keeps its store: every
     collected disjunct came from sound piece-rewriting steps, so each
     must be subsumed by some disjunct of the fault-free fixpoint. *)
  QCheck.Test.make ~count
    ~name:"fault-injected rewriting is entailed by the fault-free fixpoint"
    QCheck.(triple small_nat theory_arb query_arb)
    (fun (seed, trules, qatoms) ->
      let theory = decode_theory trules and q = decode_query qatoms in
      let full = Rewriting.Rewrite.rewrite ~budget:rewrite_budget theory q in
      match full.Rewriting.Rewrite.outcome with
      | Rewriting.Rewrite.Complete ->
          List.for_all
            (fun pool ->
              let partial =
                with_faults (1 + seed) (fun () ->
                    let guard = Guard.create () in
                    Rewriting.Rewrite.rewrite ~pool ~guard
                      ~budget:rewrite_budget theory q)
              in
              List.for_all
                (fun dq ->
                  List.exists
                    (fun d' -> Containment.implies dq d')
                    (Ucq.disjuncts full.Rewriting.Rewrite.ucq))
                (Ucq.disjuncts partial.Rewriting.Rewrite.ucq))
            [ Parallel.Pool.sequential; pool3; pool4 ]
      | _ -> true)

let prop_arena_faulty_chase_is_prefix =
  (* The cross-mode fault differential: a fault-injected arena-mode
     chase must be a stage-exact prefix of the fault-free *boxed* chase
     — the two engines stay interchangeable even while the schedule is
     killing workers and tripping guards. *)
  QCheck.Test.make ~count
    ~name:"fault-injected arena chase = prefix of fault-free boxed chase"
    QCheck.(triple small_nat theory_arb instance_arb)
    (fun (seed, trules, inst) ->
      let theory = decode_theory trules and d = decode_instance inst in
      let reference =
        with_arena false (fun () ->
            Chase.Engine.run ~max_depth ~max_atoms theory d)
      in
      List.for_all
        (fun pool ->
          let run =
            with_faults (1 + seed) (fun () ->
                with_arena true (fun () ->
                    let guard = Guard.create () in
                    Chase.Engine.run ~pool ~guard ~max_depth ~max_atoms
                      theory d))
          in
          let dr = Chase.Engine.depth run in
          dr <= Chase.Engine.depth reference
          && List.for_all
               (fun i ->
                 Fact_set.equal (Chase.Engine.stage run i)
                   (Chase.Engine.stage reference i))
               (List.init (dr + 1) Fun.id))
        [ Parallel.Pool.sequential; pool2; pool4 ])

let prop_pool_absorbs_injected_faults =
  (* Injected task exceptions recover through the coordinator's retry
     pass; worker deaths recover through orphan redistribution. Under any
     schedule, [map_array] must still return exactly the right answers. *)
  QCheck.Test.make ~count
    ~name:"map_array under any fault schedule = Array.map"
    QCheck.(pair small_nat (list int))
    (fun (seed, l) ->
      let f x = (x * 7) + 1 in
      let arr = Array.of_list l in
      let expected = Array.map f arr in
      List.for_all
        (fun pool ->
          with_faults (1 + seed) (fun () ->
              Parallel.Pool.map_array pool f arr = expected))
        [ Parallel.Pool.sequential; pool2; pool4 ])

let prop_pool_aggregates_real_errors =
  (* Genuine task failures (not injected, so the retry pass re-fails) are
     aggregated into one [Task_errors], index-sorted, with one entry per
     failing index — never a bare exception from whichever task lost the
     race. *)
  QCheck.Test.make ~count
    ~name:"Task_errors lists exactly the failing indices, in order"
    QCheck.(list (pair small_int bool))
    (fun l ->
      let arr = Array.of_list l in
      let f (x, fail) = if fail then failwith (string_of_int x) else x * 2 in
      let expected_idx =
        List.concat
          (List.mapi (fun i (_, fail) -> if fail then [ i ] else []) l)
      in
      List.for_all
        (fun pool ->
          (match Parallel.Pool.map_array pool f arr with
          | res -> expected_idx = [] && res = Array.map f arr
          | exception Parallel.Pool.Task_errors errs ->
              List.map (fun (i, _, _) -> i) errs = expected_idx
              && List.for_all
                   (fun (i, e, _) ->
                     match e with
                     | Failure s -> s = string_of_int (fst arr.(i))
                     | _ -> false)
                   errs)
          &&
          (* The Result-returning variant never raises and agrees slotwise. *)
          let slots = Parallel.Pool.map_array_result pool f arr in
          Array.length slots = Array.length arr
          && List.for_all
               (fun i ->
                 match (slots.(i), snd arr.(i)) with
                 | Ok y, false -> y = f arr.(i)
                 | Error (Failure _, _), true -> true
                 | _ -> false)
               (List.init (Array.length arr) Fun.id))
        [ Parallel.Pool.sequential; pool2; pool4 ])

let prop_faulty_answering_never_lies =
  (* End to end: certain answers computed under fault injection are a
     subset of the fault-free certain answers (a truncated chase can miss
     answers, never invent them). *)
  QCheck.Test.make ~count
    ~name:"fault-injected certain answers are a subset of fault-free ones"
    QCheck.(triple small_nat theory_arb instance_arb)
    (fun (seed, trules, inst) ->
      let theory = decode_theory trules and d = decode_instance inst in
      let x = Term.var "x" and y = Term.var "y" in
      let q = Cq.make ~free:[ x ] [ Atom.make e [ x; y ] ] in
      let full =
        Frontier.certain_answers ~max_depth ~max_atoms theory d q
      in
      let partial =
        with_faults (1 + seed) (fun () ->
            let guard = Guard.create () in
            Frontier.certain_answers ~guard ~max_depth ~max_atoms theory d q)
      in
      List.for_all
        (fun tuple -> List.exists (( = ) tuple) full)
        (partial : Term.t list list))

let prop_faulty_portfolio_never_lies =
  (* Under any injected fault schedule the portfolio still only returns
     entailed tuples: everything it reports must appear in the
     fault-free saturated chase's certain answers, and an answer it
     marks exact under faults must BE the exact answer. *)
  QCheck.Test.make ~count
    ~name:"fault-injected portfolio answers are sound, exact claims exact"
    QCheck.(triple small_nat theory_arb instance_arb)
    (fun (seed, trules, inst) ->
      let theory = decode_theory trules and d = decode_instance inst in
      let x = Term.var "x" and y = Term.var "y" in
      let q = Cq.make ~free:[ x ] [ Atom.make e [ x; y ] ] in
      let plan = Portfolio.plan theory in
      let reference, ref_exact, _ =
        Portfolio.Strategy.chase_arm ~max_depth:6 ~max_atoms theory d q
      in
      QCheck.assume ref_exact;
      List.for_all
        (fun pool ->
          let a =
            with_faults (1 + seed) (fun () ->
                let guard = Guard.create () in
                Portfolio.execute ?pool ~guard ~budget:rewrite_budget
                  ~max_depth:6 ~max_atoms plan theory d q)
          in
          List.for_all
            (fun tuple -> List.exists (( = ) tuple) reference)
            a.Portfolio.Strategy.tuples
          && (not a.Portfolio.Strategy.exact
             || Portfolio.Strategy.equal_answers a.Portfolio.Strategy.tuples
                  reference))
        [ None; Some pool4 ])

let () =
  Alcotest.run "properties"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_engine_matches_naive_reference;
            prop_parallel_chase_deterministic;
            prop_parallel_oblivious_deterministic;
            prop_parallel_rewriting_equivalent;
            prop_kernel_rewriting_matches_naive_reference;
            prop_indexed_store_matches_reference;
            prop_decomposed_implies_matches_monolithic;
            prop_rewriting_answers_like_chase;
            prop_zoo_answering_agreement;
            prop_portfolio_agrees_with_chase;
            prop_portfolio_agrees_on_zoo_instances;
          ] );
      ( "arena",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_arena_chase_matches_boxed;
            prop_arena_hom_matches_boxed;
            prop_arena_rewriting_equivalent;
            prop_arena_zoo_chase_matches_boxed;
          ] );
      ( "eval",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_eval_answers_match_boxed;
            prop_eval_ucq_matches_boxed;
            prop_eval_zoo_certain_answers_agree;
          ] );
      ( "pool",
        [ QCheck_alcotest.to_alcotest prop_pool_primitives ] );
      ( "faults",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_faulty_chase_is_prefix;
            prop_arena_faulty_chase_is_prefix;
            prop_faulty_rewriting_is_sound;
            prop_pool_absorbs_injected_faults;
            prop_pool_aggregates_real_errors;
            prop_faulty_answering_never_lies;
            prop_faulty_portfolio_never_lies;
          ] );
    ]

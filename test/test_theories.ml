(* Tests for the theory zoo and the syntactic class checkers. *)

open Logic

let test_zoo_classification () =
  let check name theory ~linear ~sticky ~binary ~connected =
    let r = Theories.Classes.classify theory in
    Alcotest.(check bool) (name ^ " linear") linear r.Theories.Classes.linear;
    Alcotest.(check bool) (name ^ " sticky") sticky r.Theories.Classes.sticky;
    Alcotest.(check bool) (name ^ " binary") binary r.Theories.Classes.binary;
    Alcotest.(check bool) (name ^ " connected") connected
      r.Theories.Classes.connected
  in
  check "t_p" Theories.Zoo.t_p ~linear:true ~sticky:true ~binary:true
    ~connected:true;
  check "t_a" Theories.Zoo.t_a ~linear:true ~sticky:true ~binary:true
    ~connected:true;
  (* Example 39 is the flagship sticky theory. *)
  check "t_sticky" Theories.Zoo.t_sticky ~linear:false ~sticky:true
    ~binary:false ~connected:true;
  (* Example 41's join variable is marked: not sticky. *)
  check "t_nonbdd" Theories.Zoo.t_nonbdd ~linear:false ~sticky:false
    ~binary:false ~connected:true;
  check "t_d" Theories.Zoo.t_d ~linear:false ~sticky:false ~binary:true
    ~connected:true

let test_weak_acyclicity () =
  (* Transitive closure: Datalog, trivially weakly acyclic. *)
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let tc =
    Theory.make
      [
        Tgd.make
          ~body:[ Atom.make Theories.Zoo.e2 [ x; y ];
                  Atom.make Theories.Zoo.e2 [ y; z ] ]
          ~head:[ Atom.make Theories.Zoo.e2 [ x; z ] ]
          ();
      ]
  in
  Alcotest.(check bool) "tc weakly acyclic" true
    (Theories.Classes.is_weakly_acyclic tc);
  (* A one-shot invention: Human(x) -> exists z. Name(x, z): acyclic. *)
  let name2 = Symbol.make "Name" ~arity:2 in
  let oneshot =
    Theory.make
      [
        Tgd.make
          ~body:[ Atom.make Theories.Zoo.human [ x ] ]
          ~head:[ Atom.make name2 [ x; z ] ]
          ();
      ]
  in
  Alcotest.(check bool) "one-shot weakly acyclic" true
    (Theories.Classes.is_weakly_acyclic oneshot);
  (* The non-terminating zoo members all have special cycles. *)
  List.iter
    (fun (name, theory) ->
      Alcotest.(check bool) (name ^ " not weakly acyclic") false
        (Theories.Classes.is_weakly_acyclic theory);
      Alcotest.(check bool) (name ^ " has a witness") true
        (Theories.Classes.weak_acyclicity_witness theory <> None))
    [
      ("t_p", Theories.Zoo.t_p); ("t_a", Theories.Zoo.t_a);
      ("t_spouse", Theories.Zoo.t_spouse); ("t_d", Theories.Zoo.t_d);
      ("t_loopcut", Theories.Zoo.t_loopcut);
    ];
  (* Consistency with the engine: weakly acyclic theories saturate. *)
  let _, _, d = Theories.Instances.path Theories.Zoo.e2 4 in
  let run = Chase.Engine.run ~max_depth:20 tc d in
  Alcotest.(check bool) "tc chase saturates" true (Chase.Engine.saturated run)

let test_guardedness () =
  Alcotest.(check bool) "t_p guarded" true (Theory.is_guarded Theories.Zoo.t_p);
  Alcotest.(check bool) "t_loopcut not guarded" false
    (Theory.is_guarded Theories.Zoo.t_loopcut);
  Alcotest.(check bool) "t_sticky guarded" false
    (Theory.is_guarded Theories.Zoo.t_sticky)

let test_tdk_matches_td () =
  (* t_dk 2 is T_d with R = I2, G = I1. *)
  let t2 = Theories.Zoo.t_dk 2 in
  Alcotest.(check int) "rule count" 4 (List.length (Theory.rules t2));
  Alcotest.(check bool) "binary" true (Theory.is_binary t2);
  (* T_d itself has 3 rules (pins has a two-atom head covering both colours,
     where t_dk has one pins rule per colour). *)
  Alcotest.(check int) "t_d rules" 3 (List.length (Theory.rules Theories.Zoo.t_d))

let test_e28_truncations () =
  let t3 = Theories.Zoo.t_e28 3 in
  Alcotest.(check int) "three rules" 3 (List.length (Theory.rules t3));
  Alcotest.(check bool) "linear" true (Theory.is_linear t3);
  Alcotest.(check bool) "binary" true (Theory.is_binary t3)

let test_instances_shapes () =
  let a, b, p5 = Theories.Instances.path Theories.Zoo.g2 5 in
  Alcotest.(check int) "path facts" 5 (Fact_set.cardinal p5);
  Alcotest.(check bool) "endpoints differ" false (Term.equal a b);
  let cyc = Theories.Instances.cycle Theories.Zoo.e2 4 in
  Alcotest.(check int) "cycle facts" 4 (Fact_set.cardinal cyc);
  Alcotest.(check int) "cycle domain" 4
    (Term.Set.cardinal (Fact_set.domain cyc));
  let gg = Gaifman.of_fact_set cyc in
  Alcotest.(check int) "cycle degree 2" 2 (Gaifman.max_degree gg);
  let star = Theories.Instances.sticky_star 3 in
  Alcotest.(check int) "star facts" 4 (Fact_set.cardinal star);
  let ex66 = Theories.Instances.ex66_instance 5 in
  Alcotest.(check int) "ex66 facts" 6 (Fact_set.cardinal ex66)

let test_grid_instance () =
  let g = Theories.Instances.grid Theories.Zoo.r2 Theories.Zoo.g2 ~width:3 ~height:2 in
  (* 2 rows x 2 right-edges + 1 column-gap x 3 down-edges = 4 + 3. *)
  Alcotest.(check int) "edge count" 7 (Fact_set.cardinal g);
  Alcotest.(check int) "node count" 6
    (Term.Set.cardinal (Fact_set.domain g));
  let gg = Gaifman.of_fact_set g in
  Alcotest.(check bool) "connected" true (Gaifman.connected gg);
  Alcotest.(check bool) "bounded degree" true (Gaifman.max_degree gg <= 4);
  (* T_d on a red/green grid instance still chases fine. *)
  let run = Chase.Engine.run ~max_depth:2 ~max_atoms:20_000 Theories.Zoo.t_d g in
  Alcotest.(check bool) "chase grows" true
    (Fact_set.cardinal (Chase.Engine.result run) > 7)

(* The seeded large-instance generators feeding the eval experiments:
   the same seed must yield literally the same instance in every
   process, pinned by a digest of the sorted rendered facts (atom
   hash-cons ids are not stable across processes, printed names are).
   A diff here means the drawing order changed — which silently breaks
   BENCH_eval comparability — so any intentional generator change must
   update the goldens. *)
let test_instance_generator_goldens () =
  let digest fs =
    Fact_set.atoms fs
    |> List.map (fun a -> Fmt.str "%a" Atom.pp a)
    |> List.sort String.compare
    |> String.concat "\n" |> Digest.string |> Digest.to_hex
  in
  let er =
    Theories.Instances.erdos_renyi Theories.Zoo.e2 ~seed:7 ~nodes:50
      ~edges:400
  in
  (* 368 < 400: uniform drawing with replacement collapses duplicates. *)
  Alcotest.(check int) "er cardinal" 368 (Fact_set.cardinal er);
  Alcotest.(check int) "er domain" 50
    (Term.Set.cardinal (Fact_set.domain er));
  Alcotest.(check string) "er digest" "6fb2b16772e2cd34320351c2ad4e7698"
    (digest er);
  let ba =
    Theories.Instances.barabasi_albert Theories.Zoo.e2 ~seed:7 ~nodes:60 ~m:3
  in
  Alcotest.(check int) "ba cardinal" 166 (Fact_set.cardinal ba);
  Alcotest.(check int) "ba domain" 60
    (Term.Set.cardinal (Fact_set.domain ba));
  Alcotest.(check string) "ba digest" "ae42f87fd98277c6661df452d788c6e4"
    (digest ba);
  let g = Theories.Instances.grid Theories.Zoo.r2 Theories.Zoo.g2 ~width:5 ~height:4 in
  Alcotest.(check string) "grid digest" "364833381ca760a557535b6174de9b2b"
    (digest g);
  (* Redraws with the same seed are equal; a different seed differs. *)
  List.iter
    (fun seed ->
      Alcotest.(check bool) "er redraw" true
        (Fact_set.equal
           (Theories.Instances.erdos_renyi Theories.Zoo.e2 ~seed ~nodes:30
              ~edges:100)
           (Theories.Instances.erdos_renyi Theories.Zoo.e2 ~seed ~nodes:30
              ~edges:100));
      Alcotest.(check bool) "ba redraw" true
        (Fact_set.equal
           (Theories.Instances.barabasi_albert Theories.Zoo.e2 ~seed
              ~nodes:30 ~m:2)
           (Theories.Instances.barabasi_albert Theories.Zoo.e2 ~seed
              ~nodes:30 ~m:2)))
    [ 1; 7; 42 ];
  Alcotest.(check bool) "seeds differ" false
    (Fact_set.equal
       (Theories.Instances.erdos_renyi Theories.Zoo.e2 ~seed:1 ~nodes:30
          ~edges:100)
       (Theories.Instances.erdos_renyi Theories.Zoo.e2 ~seed:2 ~nodes:30
          ~edges:100))

let test_query_families () =
  let x0, x3, g3 = Theories.Zoo.g_path_query 3 in
  Alcotest.(check int) "g path atoms" 3 (Cq.size g3);
  Alcotest.(check bool) "free endpoints" true
    (List.for_all Term.is_var [ x0; x3 ]);
  let _, _, phi2 = Theories.Zoo.phi_r 2 in
  (* phi_R^2 = R(x,p1), R(p1,x'), R(y,q1), R(q1,y'), G(x',y') *)
  Alcotest.(check int) "phi_r 2 atoms" 5 (Cq.size phi2);
  let _, _, phi0 = Theories.Zoo.phi_r 0 in
  Alcotest.(check int) "phi_r 0 is one G atom" 1 (Cq.size phi0)

let test_phi_r_on_green_path () =
  (* (i) of Theorem 5(B): G^{2^n}(a,b) chase satisfies phi_R^n(a,b).
     Check for n = 1: G^2 path, phi_R^1. *)
  let a, b, d = Theories.Instances.path Theories.Zoo.g2 2 in
  let x, y, phi1 = Theories.Zoo.phi_r 1 in
  ignore x;
  ignore y;
  (match
     Chase.Entailment.entails ~max_depth:4 ~max_atoms:20_000 Theories.Zoo.t_d
       d phi1 [ a; b ]
   with
  | Chase.Entailment.Entailed _ -> ()
  | _ -> Alcotest.fail "phi_R^1(a,b) should hold on G^2");
  (* (ii): on a proper subset (single G edge), phi_R^1(a,b) fails: a and b
     are no longer connected. *)
  let _, _, d1 = Theories.Instances.path Theories.Zoo.g2 1 in
  let d_sub = Fact_set.of_list [ List.hd (Fact_set.atoms d1) ] in
  match
    Chase.Entailment.entails ~max_depth:4 ~max_atoms:20_000 Theories.Zoo.t_d
      d_sub phi1 [ a; b ]
  with
  | Chase.Entailment.Entailed _ ->
      Alcotest.fail "phi_R^1(a,b) must fail when b is absent"
  | _ -> ()

let test_phi_r2_on_green_path4 () =
  (* n = 2: G^4(a,b) |= phi_R^2(a,b) via the doubling grid. *)
  let a, b, d = Theories.Instances.path Theories.Zoo.g2 4 in
  let _, _, phi2 = Theories.Zoo.phi_r 2 in
  match
    Chase.Entailment.entails ~max_depth:6 ~max_atoms:100_000 Theories.Zoo.t_d
      d phi2 [ a; b ]
  with
  | Chase.Entailment.Entailed n ->
      Alcotest.(check bool) "within depth" true (n <= 6)
  | _ -> Alcotest.fail "phi_R^2(a,b) should hold on G^4"

let test_sticky_star_nonlocality_witness () =
  (* Example 39: the atom E4(a, b2, *, c_l) in the chase requires every
     R(a,c_i) of the star: check that chasing a sub-star misses facts. *)
  let l = 3 in
  let star = Theories.Instances.sticky_star l in
  let run =
    Chase.Engine.run ~max_depth:l ~max_atoms:50_000 Theories.Zoo.t_sticky star
  in
  let full = Chase.Engine.result run in
  (* Chase of the star minus one R-fact is strictly smaller on E4 atoms. *)
  let smaller =
    Fact_set.remove
      (Atom.make Theories.Zoo.r2 [ Term.const "a"; Term.const "c3" ])
      star
  in
  let run' =
    Chase.Engine.run ~max_depth:l ~max_atoms:50_000 Theories.Zoo.t_sticky
      smaller
  in
  Alcotest.(check bool) "sub-star chase strictly smaller" true
    (Fact_set.cardinal (Chase.Engine.result run') < Fact_set.cardinal full)

let test_example41_nonbdd_behaviour () =
  (* Example 41: R(a_n, c) is derived only after n steps — derivation depth
     grows with the instance, the hallmark of non-BDD. *)
  let depth_for n =
    let d = Theories.Instances.nonbdd_chain n in
    let x = Term.var "x" in
    let q =
      Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.r2 [ x; Term.var "cv" ] ]
    in
    let run = Chase.Engine.run ~max_depth:(n + 2) Theories.Zoo.t_nonbdd d in
    match
      Chase.Entailment.needed_depth run q [ Term.const (Printf.sprintf "a%d" n) ]
    with
    | Some k -> k
    | None -> Alcotest.fail "R(a_n, c) should be derivable"
  in
  Alcotest.(check int) "chain 2" 2 (depth_for 2);
  Alcotest.(check int) "chain 4" 4 (depth_for 4);
  Alcotest.(check bool) "depth grows" true (depth_for 5 > depth_for 3)

(* ------------------------------------------------------------------ *)
(* Generator golden samples: the seed-determinism contract             *)
(* ------------------------------------------------------------------ *)

(* These strings pin the contract documented in [Generators]: the same
   seed yields literally the same theory in every process, at any -j.
   A diff here means the drawing order changed — which silently breaks
   fuzz-campaign replay and .repro provenance — so any intentional
   generator change must update both the golden and the contract note. *)

let golden_guarded =
  "theory guarded[7]:\n\
  \  L1(x,y), U1(x) -> L0(x,y)\n\
  \  L1(x,y) -> L1(y,x)\n\
  \  L1(x,y), U0(x) -> U0(x)"

let golden_sticky =
  "theory sticky[7]:\n\
  \  L0(x,y) -> L0(x,y)\n\
  \  L0(x,y) -> exists w. L1(y,w)\n\
  \  L1(x,y) -> exists w. L0(x,w)"

let golden_loop_restricted =
  "theory loop-restricted[7]:\n\
  \  L2(x,y) -> L2(y,x)\n\
  \  L2(x,y) -> L2(y,y)\n\
  \  L2(x,y) -> L2(y,x)\n\
  \  L1(x,y) -> L1(y,y)"

let test_generator_goldens () =
  let render t = Fmt.str "%a" Theory.pp t in
  Alcotest.(check string) "guarded golden" golden_guarded
    (render (Theories.Generators.random_guarded ~seed:7 ~rels:2 ~rules:3));
  Alcotest.(check string) "sticky golden" golden_sticky
    (render (Theories.Generators.random_sticky ~seed:7 ~rels:2 ~rules:3));
  Alcotest.(check string) "loop-restricted golden" golden_loop_restricted
    (render
       (Theories.Generators.random_loop_restricted ~seed:7 ~rels:3 ~rules:4))

let test_generator_determinism () =
  (* Two draws with the same arguments are identical — no global
     Random state leaks between generator calls. *)
  let render t = Fmt.str "%a" Theory.pp t in
  List.iter
    (fun seed ->
      let pairs =
        [
          (fun () ->
            Theories.Generators.random_guarded ~seed ~rels:3 ~rules:4);
          (fun () -> Theories.Generators.random_sticky ~seed ~rels:3 ~rules:4);
          (fun () ->
            Theories.Generators.random_loop_restricted ~seed ~rels:3 ~rules:4);
        ]
      in
      List.iter
        (fun gen ->
          Alcotest.(check string)
            (Printf.sprintf "seed %d replays" seed)
            (render (gen ()))
            (render (gen ())))
        pairs)
    [ 1; 7; 42 ];
  (* Instances too, including the unary extension. *)
  let t = Theories.Generators.random_guarded ~seed:7 ~rels:2 ~rules:3 in
  let draw () =
    Theories.Generators.random_instance_for ~seed:11 t ~nodes:4 ~facts:6
  in
  Alcotest.(check bool) "instance replays" true
    (Fact_set.equal (draw ()) (draw ()))

let test_generator_class_membership () =
  (* Each emitter lands in the class it is named after. *)
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "guarded[%d] is guarded" seed)
        true
        (Theory.is_guarded
           (Theories.Generators.random_guarded ~seed ~rels:3 ~rules:4));
      Alcotest.(check bool)
        (Printf.sprintf "sticky[%d] is sticky" seed)
        true
        (Theories.Classes.is_sticky
           (Theories.Generators.random_sticky ~seed ~rels:3 ~rules:4)))
    [ 1; 2; 3; 7; 42 ]

let test_generator_unary_instances () =
  (* A guarded theory mentions unary relations: the instance generator
     must seed them (the binary-only draw is unchanged). *)
  let t = Theories.Generators.random_guarded ~seed:7 ~rels:2 ~rules:3 in
  let d = Theories.Generators.random_instance_for ~seed:11 t ~nodes:4 ~facts:6 in
  let unary =
    List.filter (fun a -> Symbol.arity (Atom.rel a) = 1) (Fact_set.atoms d)
  in
  Alcotest.(check bool) "some unary facts" true (unary <> [])

let test_marked_positions_nonempty () =
  let marked = Theories.Classes.marked_positions Theories.Zoo.t_sticky in
  Alcotest.(check bool) "some marked positions" true (marked <> []);
  let marked_nb = Theories.Classes.marked_positions Theories.Zoo.t_nonbdd in
  Alcotest.(check bool) "example 41 marks the join position" true
    (List.exists
       (fun (s, i) -> Symbol.equal s Theories.Zoo.e3 && i = 0)
       marked_nb)

let () =
  Alcotest.run "theories"
    [
      ( "classes",
        [
          Alcotest.test_case "zoo classification" `Quick
            test_zoo_classification;
          Alcotest.test_case "guardedness" `Quick test_guardedness;
          Alcotest.test_case "weak acyclicity" `Quick test_weak_acyclicity;
          Alcotest.test_case "marked positions" `Quick
            test_marked_positions_nonempty;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "t_dk vs t_d" `Quick test_tdk_matches_td;
          Alcotest.test_case "e28 truncations" `Quick test_e28_truncations;
          Alcotest.test_case "instances" `Quick test_instances_shapes;
          Alcotest.test_case "grid instance" `Quick test_grid_instance;
          Alcotest.test_case "instance generator goldens" `Quick
            test_instance_generator_goldens;
          Alcotest.test_case "query families" `Quick test_query_families;
        ] );
      ( "generators",
        [
          Alcotest.test_case "golden samples" `Quick test_generator_goldens;
          Alcotest.test_case "seed determinism" `Quick
            test_generator_determinism;
          Alcotest.test_case "class membership" `Quick
            test_generator_class_membership;
          Alcotest.test_case "unary instance extension" `Quick
            test_generator_unary_instances;
        ] );
      ( "paper phenomena",
        [
          Alcotest.test_case "phi_R^1 on G^2" `Quick test_phi_r_on_green_path;
          Alcotest.test_case "phi_R^2 on G^4" `Quick test_phi_r2_on_green_path4;
          Alcotest.test_case "sticky star witness" `Quick
            test_sticky_star_nonlocality_witness;
          Alcotest.test_case "example 41 depth growth" `Quick
            test_example41_nonbdd_behaviour;
        ] );
    ]

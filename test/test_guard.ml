(* Unit tests for the resource governor (lib/guard) and its integration
   with the chase: trip causes, stickiness, counters, the outcome
   combinator, fault-schedule determinism, and — the promptness
   contract — a 1 ms deadline on an exponential chase returning in well
   under a second. *)

open Logic

let cause =
  Alcotest.testable Guard.pp_cause (fun a b ->
      Guard.cause_to_string a = Guard.cause_to_string b)

let cause_opt = Alcotest.option cause

(* ------------------------------------------------------------------ *)
(* Trip causes                                                         *)
(* ------------------------------------------------------------------ *)

let test_fuel_trip () =
  let g = Guard.create ~fuel:5 () in
  Alcotest.check cause_opt "within budget" None (Guard.spend g 3);
  Alcotest.check cause_opt "balance goes negative" (Some Guard.Fuel)
    (Guard.spend g 3);
  Alcotest.check cause_opt "sticky on check" (Some Guard.Fuel) (Guard.check g);
  Alcotest.check cause_opt "sticky on status" (Some Guard.Fuel)
    (Guard.status g);
  let p = Guard.progress g in
  Alcotest.(check int) "fuel accounted" 6 p.Guard.fuel_spent

let test_deadline_trip () =
  let g = Guard.create ~deadline_s:0.001 () in
  Unix.sleepf 0.01;
  Alcotest.check cause_opt "deadline passed" (Some Guard.Deadline)
    (Guard.check g);
  Alcotest.check cause_opt "spend also reports it" (Some Guard.Deadline)
    (Guard.spend g 1)

let test_memory_trip () =
  (* A one-word ceiling: the very first checkpoint samples the heap and
     trips. *)
  let g = Guard.create ~max_heap_words:1 () in
  Alcotest.check cause_opt "first checkpoint samples and trips"
    (Some Guard.Memory) (Guard.check g);
  let p = Guard.progress g in
  Alcotest.(check bool) "peak heap recorded" true (p.Guard.peak_heap_words > 0)

let test_cancellation () =
  let token = Atomic.make false in
  let g = Guard.create ~cancel:token () in
  Alcotest.check cause_opt "not yet" None (Guard.check g);
  Atomic.set token true;
  Alcotest.check cause_opt "external flip observed" (Some Guard.Cancelled)
    (Guard.check g);
  let g' = Guard.unlimited () in
  Guard.cancel g';
  Alcotest.(check bool) "cancelled" true (Guard.cancelled g');
  Alcotest.check cause_opt "own cancel observed" (Some Guard.Cancelled)
    (Guard.check g')

let test_first_cause_wins () =
  let g = Guard.create ~fuel:0 ~deadline_s:0.0 () in
  let first = Guard.spend g 1 in
  Alcotest.(check bool) "tripped" true (first <> None);
  Guard.cancel g;
  Alcotest.check cause_opt "cause is sticky across later signals" first
    (Guard.check g)

(* ------------------------------------------------------------------ *)
(* The outcome combinator                                              *)
(* ------------------------------------------------------------------ *)

let test_outcome () =
  let g = Guard.unlimited () in
  (match Guard.outcome g ~complete:"done" ~partial:"salvaged" with
  | Guard.Complete s -> Alcotest.(check string) "complete" "done" s
  | Guard.Exhausted _ -> Alcotest.fail "unlimited guard reported Exhausted");
  let g' = Guard.create ~fuel:0 () in
  ignore (Guard.spend g' 1);
  match Guard.outcome g' ~complete:"done" ~partial:"salvaged" with
  | Guard.Complete _ -> Alcotest.fail "tripped guard reported Complete"
  | Guard.Exhausted { partial; cause = c; progress } ->
      Alcotest.(check string) "partial" "salvaged" partial;
      Alcotest.check cause "cause" Guard.Fuel c;
      Alcotest.(check bool) "fuel counted" true (progress.Guard.fuel_spent >= 1)

(* ------------------------------------------------------------------ *)
(* Fault schedules                                                     *)
(* ------------------------------------------------------------------ *)

let test_faults_deterministic () =
  Alcotest.(check string)
    "same seed, same schedule"
    (Guard.Faults.describe (Guard.Faults.of_seed 42))
    (Guard.Faults.describe (Guard.Faults.of_seed 42));
  let fates schedule =
    Guard.Faults.install schedule;
    let fs =
      List.init 64 (fun _ ->
          match Guard.Faults.claim_fate ~worker:1 with
          | `Run -> "r"
          | `Raise k -> Printf.sprintf "x%d" k
          | `Die -> "d")
    in
    Guard.Faults.install Guard.Faults.none;
    String.concat "" fs
  in
  let s = Guard.Faults.of_seed 7 in
  Alcotest.(check string) "replayable fate sequence" (fates s) (fates s);
  Guard.Faults.install Guard.Faults.none;
  Alcotest.(check bool) "none is inactive" false (Guard.Faults.active ())

(* ------------------------------------------------------------------ *)
(* The saturation kernel                                               *)
(* ------------------------------------------------------------------ *)

let tally = Saturation.Stats.tally

let verdict_str = function
  | Saturation.Saturated -> "saturated"
  | Saturation.Stopped -> "stopped"
  | Saturation.Tripped c -> "tripped:" ^ Guard.cause_to_string c

let check_verdict msg expected got =
  Alcotest.(check string) msg (verdict_str expected) (verdict_str got)

let test_kernel_saturates () =
  (* Count down from 5: six committed rounds (5..0), then a drained
     worklist. *)
  let step (_ : Saturation.ctx) batch =
    let next =
      List.concat_map
        (fun n -> if n = 0 then [] else [ n - 1 ])
        (Array.to_list batch)
    in
    {
      Saturation.next;
      tally =
        tally ~expanded:(Array.length batch) ~generated:(List.length next)
          ~admitted:(List.length next) ();
      stop = false;
      commit = true;
    }
  in
  let verdict, stats = Saturation.run ~init:[ 5 ] ~step () in
  check_verdict "fixpoint" Saturation.Saturated verdict;
  Alcotest.(check int) "rounds" 6 stats.Saturation.Stats.rounds;
  Alcotest.(check int) "expanded" 6
    stats.Saturation.Stats.totals.Saturation.Stats.expanded;
  Alcotest.(check int) "admitted" 5
    stats.Saturation.Stats.totals.Saturation.Stats.admitted;
  Alcotest.(check int) "per-round entries" 6
    (Array.length stats.Saturation.Stats.per_round);
  Array.iteri
    (fun i (r : Saturation.Stats.round) ->
      Alcotest.(check int) "1-based index" (i + 1) r.Saturation.Stats.index;
      Alcotest.(check int) "frontier of 1" 1 r.Saturation.Stats.frontier)
    stats.Saturation.Stats.per_round;
  (* Empty init never calls the step. *)
  let verdict0, stats0 =
    Saturation.run ~init:[]
      ~step:(fun _ _ -> Alcotest.fail "step called on empty init")
      ()
  in
  check_verdict "empty init" Saturation.Saturated verdict0;
  Alcotest.(check int) "no rounds" 0 stats0.Saturation.Stats.rounds

let test_kernel_stops () =
  let forever (_ : Saturation.ctx) batch =
    {
      Saturation.next = Array.to_list batch;
      tally = tally ~expanded:(Array.length batch) ();
      stop = false;
      commit = true;
    }
  in
  (* Client stop flag. *)
  let v1, s1 =
    Saturation.run ~init:[ 0 ]
      ~step:(fun ctx batch -> { (forever ctx batch) with Saturation.stop = true })
      ()
  in
  check_verdict "stop flag" Saturation.Stopped v1;
  Alcotest.(check int) "stop round committed" 1 s1.Saturation.Stats.rounds;
  (* max_rounds. *)
  let v2, s2 = Saturation.run ~max_rounds:3 ~init:[ 0 ] ~step:forever () in
  check_verdict "max_rounds" Saturation.Stopped v2;
  Alcotest.(check int) "three rounds ran" 3 s2.Saturation.Stats.rounds;
  (* Drain hook answering non-positive. *)
  let v3, s3 =
    Saturation.run
      ~drain:(Saturation.At_most (fun () -> 0))
      ~init:[ 0 ] ~step:forever ()
  in
  check_verdict "dry drain hook" Saturation.Stopped v3;
  Alcotest.(check int) "no round ran" 0 s3.Saturation.Stats.rounds

let test_kernel_trips () =
  let forever (_ : Saturation.ctx) batch =
    {
      Saturation.next = Array.to_list batch;
      tally = tally ~expanded:(Array.length batch) ();
      stop = false;
      commit = true;
    }
  in
  (* A pre-tripped guard stops at the first round boundary, for free. *)
  let g = Guard.create ~fuel:0 () in
  ignore (Guard.spend g 1);
  let v1, s1 = Saturation.run ~guard:g ~init:[ 0 ] ~step:forever () in
  check_verdict "boundary trip" (Saturation.Tripped Guard.Fuel) v1;
  Alcotest.(check int) "no round ran" 0 s1.Saturation.Stats.rounds;
  (* A [spend] trip inside a committed round keeps that round. *)
  let g2 = Guard.create ~fuel:2 () in
  let v2, s2 =
    Saturation.run ~guard:g2 ~init:[ 0 ]
      ~step:(fun ctx batch ->
        ignore (Guard.spend g2 1);
        forever ctx batch)
      ()
  in
  check_verdict "spend trip, round kept" (Saturation.Tripped Guard.Fuel) v2;
  Alcotest.(check int) "tripping round committed" 3 s2.Saturation.Stats.rounds;
  (* [commit = false] discards the round wholesale. *)
  let g3 = Guard.create ~fuel:2 () in
  let v3, s3 =
    Saturation.run ~guard:g3 ~init:[ 0 ]
      ~step:(fun ctx batch ->
        match Guard.spend g3 1 with
        | Some _ ->
            {
              Saturation.next = [];
              tally = tally ~expanded:99 ();
              stop = false;
              commit = false;
            }
        | None -> forever ctx batch)
      ()
  in
  check_verdict "aborted round" (Saturation.Tripped Guard.Fuel) v3;
  Alcotest.(check int) "discarded round not counted" 2
    s3.Saturation.Stats.rounds;
  Alcotest.(check int) "discarded tally not accumulated" 2
    s3.Saturation.Stats.totals.Saturation.Stats.expanded

let test_kernel_outcome () =
  let g = Guard.unlimited () in
  (match
     Saturation.outcome Saturation.Saturated ~guard:g ~complete:"c"
       ~partial:"p" ~stopped_cause:Guard.Fuel
   with
  | Guard.Complete s -> Alcotest.(check string) "saturated = complete" "c" s
  | Guard.Exhausted _ -> Alcotest.fail "Saturated mapped to Exhausted");
  (match
     Saturation.outcome Saturation.Stopped ~guard:g ~complete:"c" ~partial:"p"
       ~stopped_cause:Guard.Fuel
   with
  | Guard.Complete _ -> Alcotest.fail "Stopped mapped to Complete"
  | Guard.Exhausted { partial; cause = c; _ } ->
      Alcotest.(check string) "partial threaded" "p" partial;
      Alcotest.check cause "stopped cause" Guard.Fuel c);
  match
    Saturation.outcome
      (Saturation.Tripped Guard.Deadline)
      ~guard:g ~complete:"c" ~partial:"p" ~stopped_cause:Guard.Fuel
  with
  | Guard.Complete _ -> Alcotest.fail "Tripped mapped to Complete"
  | Guard.Exhausted { cause = c; _ } ->
      Alcotest.check cause "trip cause wins" Guard.Deadline c

let test_kernel_fifo () =
  (* One-at-a-time drain: new items queue behind the remaining frontier,
     so the expansion order is breadth-first, like the worklists the
     rewriting and the marked process used to hand-roll. *)
  let order = ref [] in
  let step (_ : Saturation.ctx) batch =
    let n = match batch with [| n |] -> n | _ -> Alcotest.fail "batch size" in
    order := n :: !order;
    {
      Saturation.next = (if n < 10 then [ n + 10 ] else []);
      tally = tally ~expanded:1 ();
      stop = false;
      commit = true;
    }
  in
  let v, _ =
    Saturation.run
      ~drain:(Saturation.At_most (fun () -> 1))
      ~init:[ 1; 2; 3 ] ~step ()
  in
  check_verdict "drained" Saturation.Saturated v;
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 11; 12; 13 ]
    (List.rev !order)

let test_kernel_million_item_frontier () =
  (* The tail-recursion acceptance bar: a million-item frontier must
     drain without stack overflow, whole (drain All) and in chunks. *)
  let n = 1_000_000 in
  let rec build i acc = if i = 0 then acc else build (i - 1) (i :: acc) in
  let init = build n [] in
  let consume (_ : Saturation.ctx) batch =
    {
      Saturation.next = [];
      tally = tally ~expanded:(Array.length batch) ();
      stop = false;
      commit = true;
    }
  in
  let v1, s1 =
    Saturation.run ~record_rounds:false ~init ~step:consume ()
  in
  check_verdict "one big round" Saturation.Saturated v1;
  Alcotest.(check int) "single round" 1 s1.Saturation.Stats.rounds;
  Alcotest.(check int) "all expanded" n
    s1.Saturation.Stats.totals.Saturation.Stats.expanded;
  let v2, s2 =
    Saturation.run
      ~drain:(Saturation.At_most (fun () -> 100_000))
      ~record_rounds:false ~init ~step:consume ()
  in
  check_verdict "chunked" Saturation.Saturated v2;
  Alcotest.(check int) "ten chunks" 10 s2.Saturation.Stats.rounds;
  Alcotest.(check int) "all expanded in chunks" n
    s2.Saturation.Stats.totals.Saturation.Stats.expanded;
  let first, rest = Saturation.split_batch (n - 1) init in
  Alcotest.(check int) "split_batch prefix" (n - 1) (List.length first);
  Alcotest.(check (list int)) "split_batch remainder" [ n ] rest

(* ------------------------------------------------------------------ *)
(* Chase integration                                                   *)
(* ------------------------------------------------------------------ *)

(* A non-terminating theory: every edge grows the chain one further. *)
let chain_theory =
  let e = Symbol.make "E" ~arity:2 in
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  ( e,
    Theory.make ~name:"chain"
      [
        Tgd.make ~name:"grow"
          ~body:[ Atom.make e [ x; y ] ]
          ~head:[ Atom.make e [ y; z ] ]
          ();
      ] )

let test_chase_fuel_prefix () =
  let e, theory = chain_theory in
  let d = Fact_set.of_list [ Atom.make e [ Term.const "a"; Term.const "b" ] ] in
  let guard = Guard.create ~fuel:10 () in
  let run = Chase.Engine.run ~guard ~max_depth:1000 theory d in
  Alcotest.check cause_opt "fuel trip surfaces" (Some Guard.Fuel)
    (Chase.Engine.interrupted run);
  Alcotest.(check bool) "made progress" true (Chase.Engine.depth run >= 1);
  (* The salvaged stages are exactly the fault-free ones. *)
  let reference =
    Chase.Engine.run ~max_depth:(Chase.Engine.depth run) theory d
  in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "stage %d equal" i)
        true
        (Fact_set.equal (Chase.Engine.stage run i)
           (Chase.Engine.stage reference i)))
    (List.init (Chase.Engine.depth run + 1) Fun.id);
  match Chase.Engine.outcome run with
  | Guard.Complete _ -> Alcotest.fail "interrupted run reported Complete"
  | Guard.Exhausted { cause = c; _ } -> Alcotest.check cause "cause" Guard.Fuel c

let test_chase_cancellation () =
  let e, theory = chain_theory in
  let d = Fact_set.of_list [ Atom.make e [ Term.const "a"; Term.const "b" ] ] in
  let guard = Guard.unlimited () in
  Guard.cancel guard;
  let run = Chase.Engine.run ~guard ~max_depth:1000 theory d in
  Alcotest.check cause_opt "cancelled before the first sweep"
    (Some Guard.Cancelled)
    (Chase.Engine.interrupted run);
  Alcotest.(check int) "no stages beyond the instance" 0
    (Chase.Engine.depth run)

let test_deadline_promptness () =
  (* The acceptance bar: a 1 ms deadline on the exponential T_d chase of
     G^8 at depth 12 must return in well under a second — the checkpoint
     spacing inside sweeps is what makes this hold. *)
  let _, _, g8 = Theories.Instances.path Theories.Zoo.g2 8 in
  let guard = Guard.create ~deadline_s:0.001 () in
  let t0 = Unix.gettimeofday () in
  let run =
    Chase.Engine.run ~guard ~max_depth:12 ~max_atoms:50_000_000
      Theories.Zoo.t_d g8
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "returned promptly (%.3fs)" elapsed)
    true (elapsed < 1.0);
  Alcotest.check cause_opt "deadline reported" (Some Guard.Deadline)
    (Chase.Engine.interrupted run)

let test_rewriting_deadline_partial () =
  (* A tripped rewriting keeps its store and reports the cause through
     [outcome_of_result]. *)
  let x = Term.var "x" and y = Term.var "y" in
  let q = Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.g2 [ x; y ] ] in
  let guard = Guard.create ~fuel:3 () in
  let budget =
    {
      Rewriting.Rewrite.max_disjuncts = 500;
      max_atoms_per_disjunct = 40;
      max_steps = 100_000;
    }
  in
  let r = Rewriting.Rewrite.rewrite ~guard ~budget Theories.Zoo.t_d_noloop q in
  (match r.Rewriting.Rewrite.outcome with
  | Rewriting.Rewrite.Guard_exhausted c ->
      Alcotest.check cause "fuel trip" Guard.Fuel c
  | _ -> Alcotest.fail "expected Guard_exhausted");
  Alcotest.(check bool) "partial store kept" true
    (not (Ucq.is_empty r.Rewriting.Rewrite.ucq));
  match Rewriting.Rewrite.outcome_of_result r ~guard with
  | Guard.Complete _ -> Alcotest.fail "outcome_of_result reported Complete"
  | Guard.Exhausted { cause = c; progress; _ } ->
      Alcotest.check cause "cause threaded" Guard.Fuel c;
      Alcotest.(check bool) "progress counters move" true
        (progress.Guard.fuel_spent > 0)

let () =
  Alcotest.run "guard"
    [
      ( "trips",
        [
          Alcotest.test_case "fuel" `Quick test_fuel_trip;
          Alcotest.test_case "deadline" `Quick test_deadline_trip;
          Alcotest.test_case "memory" `Quick test_memory_trip;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "first cause wins" `Quick test_first_cause_wins;
          Alcotest.test_case "outcome combinator" `Quick test_outcome;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic schedules" `Quick
            test_faults_deterministic;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "saturation fixpoint + stats" `Quick
            test_kernel_saturates;
          Alcotest.test_case "client stops" `Quick test_kernel_stops;
          Alcotest.test_case "guard trips" `Quick test_kernel_trips;
          Alcotest.test_case "outcome packaging" `Quick test_kernel_outcome;
          Alcotest.test_case "one-at-a-time drain is FIFO" `Quick
            test_kernel_fifo;
          Alcotest.test_case "1M-item frontier drains" `Quick
            test_kernel_million_item_frontier;
        ] );
      ( "integration",
        [
          Alcotest.test_case "chase fuel trip = sound prefix" `Quick
            test_chase_fuel_prefix;
          Alcotest.test_case "chase cancellation" `Quick
            test_chase_cancellation;
          Alcotest.test_case "1 ms deadline on T_d/G^8 is prompt" `Quick
            test_deadline_promptness;
          Alcotest.test_case "rewriting trip keeps partial UCQ" `Quick
            test_rewriting_deadline_partial;
        ] );
    ]

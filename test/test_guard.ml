(* Unit tests for the resource governor (lib/guard) and its integration
   with the chase: trip causes, stickiness, counters, the outcome
   combinator, fault-schedule determinism, and — the promptness
   contract — a 1 ms deadline on an exponential chase returning in well
   under a second. *)

open Logic

let cause =
  Alcotest.testable Guard.pp_cause (fun a b ->
      Guard.cause_to_string a = Guard.cause_to_string b)

let cause_opt = Alcotest.option cause

(* ------------------------------------------------------------------ *)
(* Trip causes                                                         *)
(* ------------------------------------------------------------------ *)

let test_fuel_trip () =
  let g = Guard.create ~fuel:5 () in
  Alcotest.check cause_opt "within budget" None (Guard.spend g 3);
  Alcotest.check cause_opt "balance goes negative" (Some Guard.Fuel)
    (Guard.spend g 3);
  Alcotest.check cause_opt "sticky on check" (Some Guard.Fuel) (Guard.check g);
  Alcotest.check cause_opt "sticky on status" (Some Guard.Fuel)
    (Guard.status g);
  let p = Guard.progress g in
  Alcotest.(check int) "fuel accounted" 6 p.Guard.fuel_spent

let test_deadline_trip () =
  let g = Guard.create ~deadline_s:0.001 () in
  Unix.sleepf 0.01;
  Alcotest.check cause_opt "deadline passed" (Some Guard.Deadline)
    (Guard.check g);
  Alcotest.check cause_opt "spend also reports it" (Some Guard.Deadline)
    (Guard.spend g 1)

let test_memory_trip () =
  (* A one-word ceiling: the very first checkpoint samples the heap and
     trips. *)
  let g = Guard.create ~max_heap_words:1 () in
  Alcotest.check cause_opt "first checkpoint samples and trips"
    (Some Guard.Memory) (Guard.check g);
  let p = Guard.progress g in
  Alcotest.(check bool) "peak heap recorded" true (p.Guard.peak_heap_words > 0)

let test_cancellation () =
  let token = Atomic.make false in
  let g = Guard.create ~cancel:token () in
  Alcotest.check cause_opt "not yet" None (Guard.check g);
  Atomic.set token true;
  Alcotest.check cause_opt "external flip observed" (Some Guard.Cancelled)
    (Guard.check g);
  let g' = Guard.unlimited () in
  Guard.cancel g';
  Alcotest.(check bool) "cancelled" true (Guard.cancelled g');
  Alcotest.check cause_opt "own cancel observed" (Some Guard.Cancelled)
    (Guard.check g')

let test_first_cause_wins () =
  let g = Guard.create ~fuel:0 ~deadline_s:0.0 () in
  let first = Guard.spend g 1 in
  Alcotest.(check bool) "tripped" true (first <> None);
  Guard.cancel g;
  Alcotest.check cause_opt "cause is sticky across later signals" first
    (Guard.check g)

(* ------------------------------------------------------------------ *)
(* The outcome combinator                                              *)
(* ------------------------------------------------------------------ *)

let test_outcome () =
  let g = Guard.unlimited () in
  (match Guard.outcome g ~complete:"done" ~partial:"salvaged" with
  | Guard.Complete s -> Alcotest.(check string) "complete" "done" s
  | Guard.Exhausted _ -> Alcotest.fail "unlimited guard reported Exhausted");
  let g' = Guard.create ~fuel:0 () in
  ignore (Guard.spend g' 1);
  match Guard.outcome g' ~complete:"done" ~partial:"salvaged" with
  | Guard.Complete _ -> Alcotest.fail "tripped guard reported Complete"
  | Guard.Exhausted { partial; cause = c; progress } ->
      Alcotest.(check string) "partial" "salvaged" partial;
      Alcotest.check cause "cause" Guard.Fuel c;
      Alcotest.(check bool) "fuel counted" true (progress.Guard.fuel_spent >= 1)

(* ------------------------------------------------------------------ *)
(* Fault schedules                                                     *)
(* ------------------------------------------------------------------ *)

let test_faults_deterministic () =
  Alcotest.(check string)
    "same seed, same schedule"
    (Guard.Faults.describe (Guard.Faults.of_seed 42))
    (Guard.Faults.describe (Guard.Faults.of_seed 42));
  let fates schedule =
    Guard.Faults.install schedule;
    let fs =
      List.init 64 (fun _ ->
          match Guard.Faults.claim_fate ~worker:1 with
          | `Run -> "r"
          | `Raise k -> Printf.sprintf "x%d" k
          | `Die -> "d")
    in
    Guard.Faults.install Guard.Faults.none;
    String.concat "" fs
  in
  let s = Guard.Faults.of_seed 7 in
  Alcotest.(check string) "replayable fate sequence" (fates s) (fates s);
  Guard.Faults.install Guard.Faults.none;
  Alcotest.(check bool) "none is inactive" false (Guard.Faults.active ())

(* ------------------------------------------------------------------ *)
(* Chase integration                                                   *)
(* ------------------------------------------------------------------ *)

(* A non-terminating theory: every edge grows the chain one further. *)
let chain_theory =
  let e = Symbol.make "E" ~arity:2 in
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  ( e,
    Theory.make ~name:"chain"
      [
        Tgd.make ~name:"grow"
          ~body:[ Atom.make e [ x; y ] ]
          ~head:[ Atom.make e [ y; z ] ]
          ();
      ] )

let test_chase_fuel_prefix () =
  let e, theory = chain_theory in
  let d = Fact_set.of_list [ Atom.make e [ Term.const "a"; Term.const "b" ] ] in
  let guard = Guard.create ~fuel:10 () in
  let run = Chase.Engine.run ~guard ~max_depth:1000 theory d in
  Alcotest.check cause_opt "fuel trip surfaces" (Some Guard.Fuel)
    (Chase.Engine.interrupted run);
  Alcotest.(check bool) "made progress" true (Chase.Engine.depth run >= 1);
  (* The salvaged stages are exactly the fault-free ones. *)
  let reference =
    Chase.Engine.run ~max_depth:(Chase.Engine.depth run) theory d
  in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "stage %d equal" i)
        true
        (Fact_set.equal (Chase.Engine.stage run i)
           (Chase.Engine.stage reference i)))
    (List.init (Chase.Engine.depth run + 1) Fun.id);
  match Chase.Engine.outcome run with
  | Guard.Complete _ -> Alcotest.fail "interrupted run reported Complete"
  | Guard.Exhausted { cause = c; _ } -> Alcotest.check cause "cause" Guard.Fuel c

let test_chase_cancellation () =
  let e, theory = chain_theory in
  let d = Fact_set.of_list [ Atom.make e [ Term.const "a"; Term.const "b" ] ] in
  let guard = Guard.unlimited () in
  Guard.cancel guard;
  let run = Chase.Engine.run ~guard ~max_depth:1000 theory d in
  Alcotest.check cause_opt "cancelled before the first sweep"
    (Some Guard.Cancelled)
    (Chase.Engine.interrupted run);
  Alcotest.(check int) "no stages beyond the instance" 0
    (Chase.Engine.depth run)

let test_deadline_promptness () =
  (* The acceptance bar: a 1 ms deadline on the exponential T_d chase of
     G^8 at depth 12 must return in well under a second — the checkpoint
     spacing inside sweeps is what makes this hold. *)
  let _, _, g8 = Theories.Instances.path Theories.Zoo.g2 8 in
  let guard = Guard.create ~deadline_s:0.001 () in
  let t0 = Unix.gettimeofday () in
  let run =
    Chase.Engine.run ~guard ~max_depth:12 ~max_atoms:50_000_000
      Theories.Zoo.t_d g8
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "returned promptly (%.3fs)" elapsed)
    true (elapsed < 1.0);
  Alcotest.check cause_opt "deadline reported" (Some Guard.Deadline)
    (Chase.Engine.interrupted run)

let test_rewriting_deadline_partial () =
  (* A tripped rewriting keeps its store and reports the cause through
     [outcome_of_result]. *)
  let x = Term.var "x" and y = Term.var "y" in
  let q = Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.g2 [ x; y ] ] in
  let guard = Guard.create ~fuel:3 () in
  let budget =
    {
      Rewriting.Rewrite.max_disjuncts = 500;
      max_atoms_per_disjunct = 40;
      max_steps = 100_000;
    }
  in
  let r = Rewriting.Rewrite.rewrite ~guard ~budget Theories.Zoo.t_d_noloop q in
  (match r.Rewriting.Rewrite.outcome with
  | Rewriting.Rewrite.Guard_exhausted c ->
      Alcotest.check cause "fuel trip" Guard.Fuel c
  | _ -> Alcotest.fail "expected Guard_exhausted");
  Alcotest.(check bool) "partial store kept" true
    (not (Ucq.is_empty r.Rewriting.Rewrite.ucq));
  match Rewriting.Rewrite.outcome_of_result r ~guard with
  | Guard.Complete _ -> Alcotest.fail "outcome_of_result reported Complete"
  | Guard.Exhausted { cause = c; progress; _ } ->
      Alcotest.check cause "cause threaded" Guard.Fuel c;
      Alcotest.(check bool) "progress counters move" true
        (progress.Guard.fuel_spent > 0)

let () =
  Alcotest.run "guard"
    [
      ( "trips",
        [
          Alcotest.test_case "fuel" `Quick test_fuel_trip;
          Alcotest.test_case "deadline" `Quick test_deadline_trip;
          Alcotest.test_case "memory" `Quick test_memory_trip;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "first cause wins" `Quick test_first_cause_wins;
          Alcotest.test_case "outcome combinator" `Quick test_outcome;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic schedules" `Quick
            test_faults_deterministic;
        ] );
      ( "integration",
        [
          Alcotest.test_case "chase fuel trip = sound prefix" `Quick
            test_chase_fuel_prefix;
          Alcotest.test_case "chase cancellation" `Quick
            test_chase_cancellation;
          Alcotest.test_case "1 ms deadline on T_d/G^8 is prompt" `Quick
            test_deadline_promptness;
          Alcotest.test_case "rewriting trip keeps partial UCQ" `Quick
            test_rewriting_deadline_partial;
        ] );
    ]

(* The frontier of rewritability: T_d and its doubling grid (Sections
   10-11).

   This example reproduces the paper's Figure 1 — the fragment of
   Ch(T_d, G^8(a_0, a_8)) that connects a_0 to a_8 through three levels of
   red shortcuts — and then runs the marked-query process to exhibit
   Theorem 5(B): the rewriting of phi_R^n contains the exponentially long
   disjunct G^{2^n}.

   Run with: dune exec examples/frontier_grid.exe *)

open Frontier

let () =
  Fmt.pr "T_d (Definition 45):@.%a@.@." Theory.pp Zoo.t_d;

  (* --- Figure 1: chase the green path G^8 and exhibit phi_R^3(a0,a8). *)
  let a0, a8, g8 = Instances.path Zoo.g2 8 in
  let run = Chase_engine.run ~max_depth:7 ~max_atoms:400_000 Zoo.t_d g8 in
  Fmt.pr "chase of G^8: %d stages, %d atoms@." (Chase_engine.depth run)
    (Fact_set.cardinal (Chase_engine.result run));

  let _, _, phi3 = Zoo.phi_r 3 in
  (match Entailment.entails_run run phi3 [ a0; a8 ] with
  | Entailment.Entailed n ->
      Fmt.pr "phi_R^3(a0, a8) holds — derived at chase depth %d@." n
  | _ -> Fmt.pr "phi_R^3(a0, a8) NOT derived (budget too small?)@.");

  (* The red shortcut ladder of Figure 1: on the chase, a0 reaches a8 in 7
     steps (3 red + 1 green + 3 red) although they are 8 green steps apart
     in the instance. *)
  (match Distancing.max_contraction run with
  | Some (p, ratio) ->
      Fmt.pr "distance contraction: dist_D(%a,%a) = %d vs dist_Ch = %d \
              (ratio %.3f)@."
        Term.pp p.Distancing.a Term.pp p.Distancing.b
        (Option.get p.Distancing.dist_d)
        (Option.get p.Distancing.dist_ch)
        ratio
  | None -> ());

  (* Render the first grid level: which R-shortcuts over the original path
     were created? *)
  let dom = Fact_set.domain g8 in
  let shortcut_pairs =
    List.filter_map
      (fun atom ->
        if
          Symbol.equal (Atom.rel atom) Zoo.r2
          && Term.Set.mem (Atom.arg atom 0) dom
        then Some (Atom.arg atom 0)
        else None)
      (Fact_set.atoms (Chase_engine.result run))
  in
  Fmt.pr "path vertices with outgoing red edges: %d of %d@.@."
    (List.length (List.sort_uniq Term.compare shortcut_pairs))
    (Term.Set.cardinal dom);

  (* --- Theorem 5(B): the marked-query process. *)
  Fmt.pr "marked-query rewriting of phi_R^n under T_d:@.";
  List.iter
    (fun n ->
      let _, _, phi = Zoo.phi_r n in
      let res = Marked_process.rewrite_td phi in
      let _, _, g_query = Zoo.g_path_query (1 lsl n) in
      let found =
        Ucq.exists
          (fun d -> Containment.isomorphic d g_query)
          res.Marked_process.rewriting
      in
      Fmt.pr
        "  n=%d: |rew| = %3d disjuncts, max disjunct size = %2d, \
         G^{2^%d} present: %b  (%d process steps)@."
        n
        (Ucq.cardinal res.Marked_process.rewriting)
        (Ucq.max_disjunct_size res.Marked_process.rewriting)
        n found res.Marked_process.stats.Marked_process.steps)
    [ 1; 2; 3 ];

  (* Show the exponential disjunct itself for n = 2. *)
  let _, _, phi2 = Zoo.phi_r 2 in
  let res = Marked_process.rewrite_td phi2 in
  let _, _, g4 = Zoo.g_path_query 4 in
  (match
     Ucq.find_opt
       (fun d -> Containment.isomorphic d g4)
       res.Marked_process.rewriting
   with
  | Some d -> Fmt.pr "@.the G^4 disjunct of rew(phi_R^2):@.  %a@." Cq.pp d
  | None -> ());

  (* Ablation (Exercise 46): dropping (loop) breaks the generic rewriting —
     the piece-rewriter on the single-head compilation diverges. *)
  Fmt.pr "@.ablation: generic rewriting under T_d without (loop):@.";
  let x = Term.var "x" and y = Term.var "y" in
  let q = Cq.make ~free:[ x ] [ Atom.make Zoo.g2 [ x; y ] ] in
  let budget =
    { Rewrite.max_disjuncts = 60; max_atoms_per_disjunct = 20; max_steps = 400 }
  in
  let r = Rewrite.rewrite ~budget Zoo.t_d_noloop q in
  Fmt.pr "  outcome: %s after %d steps, %d disjuncts@."
    (match r.Rewrite.outcome with
    | Rewrite.Complete -> "complete"
    | Rewrite.Step_budget -> "step budget exhausted"
    | Rewrite.Disjunct_budget -> "disjunct budget exhausted"
    | Rewrite.Size_budget -> "size budget exhausted"
    | Rewrite.Guard_exhausted c -> "guard: " ^ Guard.cause_to_string c)
    r.Rewrite.steps
    (Ucq.cardinal r.Rewrite.ucq)

(* Crash/resume differential harness.

   Usage: crash_harness.exe [--workload chase|marked|rewrite|all]
                            [--trials N] [--dir D] [seed ...]

   Each trial forks a real child process that runs the workload with
   checkpointing enabled, SIGKILLs it at a seeded-random saturation
   round (watching the snapshot directory for the target round to
   appear), then resumes through {!Checkpoint.Supervisor} in the parent
   and compares the completed result against an uninterrupted reference
   run: bit-identical stages for the chase, equivalent UCQs (and equal
   trivial/aliased counts) for the rewriting engines. Exit 1 on any
   mismatch. Default seeds 1 7 42, 5 trials each.

   The workloads are the acceptance pair from the durability issue —
   the T_d chase over a G^8 path and the marked-query process on
   phi_R^5 — plus the generic UCQ rewriter on Example 28 for
   completeness. *)

let usage () =
  prerr_endline
    "usage: crash_harness [--workload chase|marked|rewrite|all] [--trials \
     N] [--dir D] [seed ...]";
  exit 2

type workload = Chase | Marked | Rewrite

let workload_name = function
  | Chase -> "chase"
  | Marked -> "marked"
  | Rewrite -> "rewrite"

(* One deterministic pseudo-random target round per (seed, trial):
   splitmix finisher, same mixer family the fault schedules use. *)
let mix k =
  let k = Int64.of_int k in
  let k = Int64.mul k 0x9E3779B97F4A7C15L in
  let k = Int64.logxor k (Int64.shift_right_logical k 29) in
  let k = Int64.mul k 0xBF58476D1CE4E5B9L in
  let k = Int64.logxor k (Int64.shift_right_logical k 32) in
  Int64.to_int (Int64.logand k 0x3FFFFFFFFFFFFFFFL)

(* --- workload definitions ------------------------------------------- *)

let chase_theory = Theories.Zoo.t_d
let chase_instance = lazy (let _, _, d = Theories.Instances.path Theories.Zoo.g2 8 in d)
let chase_depth = 7
let chase_atoms = 400_000

let marked_query = lazy (let _, _, phi = Theories.Zoo.phi_r 5 in phi)

let rewrite_theory = lazy (Theories.Zoo.t_e28 3)

let rewrite_query =
  lazy
    (let x = Logic.Term.var "x" and y = Logic.Term.var "y" in
     Logic.Cq.make ~free:[]
       [ Logic.Atom.make (Theories.Zoo.e_k 0) [ x; y ] ])

(* The round range kills are aimed at, per workload. The chase commits
   one round per stage; the rewriting engines one per worklist pop. *)
let target_round seed trial = function
  | Chase -> 1 + (mix ((seed * 1009) + trial) mod (chase_depth - 1))
  | Marked -> 100 + (mix ((seed * 2003) + trial) mod 8_000)
  | Rewrite -> 1 + (mix ((seed * 3001) + trial) mod 3)

(* Snapshot cadence in the child: every committed round, throttled only
   for the marked process, whose full-store snapshots are heavyweight at
   one-pop-per-round granularity. *)
let child_sink dir = function
  | Marked -> Checkpoint.sink ~every:1 ~min_interval_s:0.05 dir
  | Chase | Rewrite -> Checkpoint.sink ~every:1 ~min_interval_s:0. dir

let run_child dir w =
  let sink = child_sink dir w in
  (match w with
  | Chase ->
      ignore
        (Chase.Engine.run ~max_depth:chase_depth ~max_atoms:chase_atoms
           ~checkpoint:sink chase_theory (Lazy.force chase_instance))
  | Marked ->
      ignore
        (Marked.Process.rewrite_td ~checkpoint:sink
           (Lazy.force marked_query))
  | Rewrite ->
      ignore
        (Rewriting.Rewrite.rewrite ~checkpoint:sink
           (Lazy.force rewrite_theory)
           (Lazy.force rewrite_query)));
  (* Skip at_exit: flushing the parent's inherited buffers here would
     duplicate its output. *)
  Unix._exit 0

(* --- reference results and comparison ------------------------------- *)

type reference =
  | Chase_ref of Chase.Engine.run
  | Marked_ref of Marked.Process.result
  | Rewrite_ref of Rewriting.Rewrite.result

let reference w =
  match w with
  | Chase ->
      Chase_ref
        (Chase.Engine.run ~max_depth:chase_depth ~max_atoms:chase_atoms
           chase_theory (Lazy.force chase_instance))
  | Marked -> Marked_ref (Marked.Process.rewrite_td (Lazy.force marked_query))
  | Rewrite ->
      Rewrite_ref
        (Rewriting.Rewrite.rewrite
           (Lazy.force rewrite_theory)
           (Lazy.force rewrite_query))

let resume_and_compare ~dir ~ref_result =
  let outcome, report =
    Checkpoint.Supervisor.run ~dir (fun ~resume ->
        match resume with
        | None -> failwith "no valid snapshot to resume from"
        | Some snap -> (
            match snap.Checkpoint.Snapshot.kind with
            | k when k = Chase.Engine.checkpoint_kind ->
                Chase_ref (Chase.Engine.resume snap)
            | k when k = Marked.Process.checkpoint_kind ->
                Marked_ref (Marked.Process.resume snap)
            | k when k = Rewriting.Rewrite.checkpoint_kind ->
                Rewrite_ref (Rewriting.Rewrite.resume snap)
            | k -> failwith ("unknown snapshot kind " ^ k)))
  in
  match outcome with
  | Error e -> Error (Printexc.to_string e, report)
  | Ok resumed -> (
      match (ref_result, resumed) with
      | Chase_ref a, Chase_ref b ->
          let stages_equal =
            Chase.Engine.depth a = Chase.Engine.depth b
            && Chase.Engine.saturated a = Chase.Engine.saturated b
            &&
            let ok = ref true in
            for i = 0 to Chase.Engine.depth a do
              if
                not
                  (Logic.Fact_set.equal (Chase.Engine.stage a i)
                     (Chase.Engine.stage b i))
              then ok := false
            done;
            !ok
          in
          if stages_equal then Ok report
          else Error ("chase stages differ after resume", report)
      | Marked_ref a, Marked_ref b ->
          if
            a.Marked.Process.complete = b.Marked.Process.complete
            && Logic.Ucq.equivalent a.Marked.Process.rewriting
                 b.Marked.Process.rewriting
            && List.length a.Marked.Process.trivial
               = List.length b.Marked.Process.trivial
            && List.length a.Marked.Process.aliased
               = List.length b.Marked.Process.aliased
          then Ok report
          else Error ("marked rewriting differs after resume", report)
      | Rewrite_ref a, Rewrite_ref b ->
          if
            (a.Rewriting.Rewrite.outcome = Rewriting.Rewrite.Complete)
            = (b.Rewriting.Rewrite.outcome = Rewriting.Rewrite.Complete)
            && Logic.Ucq.equivalent a.Rewriting.Rewrite.ucq
                 b.Rewriting.Rewrite.ucq
          then Ok report
          else Error ("ucq rewriting differs after resume", report)
      | _ -> Error ("resumed a different workload kind", report))

(* --- the kill loop --------------------------------------------------- *)

let newest_round dir =
  match Checkpoint.Snapshot.list ~dir with
  | (round, _) :: _ -> Some round
  | [] -> None

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun e -> rm_rf (Filename.concat path e))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let one_trial ~base ~seed ~trial w ~ref_result =
  let dir =
    Filename.concat base
      (Printf.sprintf "%s-s%d-t%d" (workload_name w) seed trial)
  in
  rm_rf dir;
  let target = target_round seed trial w in
  (match Unix.fork () with
  | 0 -> ( try run_child dir w with _ -> Unix._exit 3)
  | pid ->
      (* Watch for the target round, then kill mid-flight. A child that
         finishes first is fine: the trial degrades to resuming from its
         last cadence snapshot. *)
      let deadline = Unix.gettimeofday () +. 120. in
      let rec watch () =
        let alive =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> true
          | _ -> false
        in
        if not alive then ()
        else if
          (match newest_round dir with
          | Some r -> r >= target
          | None -> false)
          || Unix.gettimeofday () > deadline
        then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid)
        end
        else begin
          Unix.sleepf 0.0005;
          watch ()
        end
      in
      watch ());
  match newest_round dir with
  | None -> Error ("child died before writing any snapshot", None)
  | Some killed_at -> (
      match resume_and_compare ~dir ~ref_result with
      | Ok report ->
          rm_rf dir;
          Ok (target, killed_at, report)
      | Error (msg, report) -> Error (msg, Some (target, killed_at, report)))

let () =
  let seeds = ref []
  and trials = ref 5
  and base = ref (Filename.concat (Filename.get_temp_dir_name ()) "frontier-crash")
  and workloads = ref [ Chase; Marked; Rewrite ] in
  let rec parse = function
    | [] -> ()
    | "--trials" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n > 0 -> trials := n
        | _ -> usage ());
        parse rest
    | "--dir" :: d :: rest ->
        base := d;
        parse rest
    | "--workload" :: w :: rest ->
        (match w with
        | "chase" -> workloads := [ Chase ]
        | "marked" -> workloads := [ Marked ]
        | "rewrite" -> workloads := [ Rewrite ]
        | "all" -> workloads := [ Chase; Marked; Rewrite ]
        | _ -> usage ());
        parse rest
    | s :: rest ->
        (match int_of_string_opt s with
        | Some seed -> seeds := seed :: !seeds
        | None -> usage ());
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seeds = match List.rev !seeds with [] -> [ 1; 7; 42 ] | s -> s in
  (try Unix.mkdir !base 0o755
   with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
  let failures = ref 0 and total = ref 0 in
  List.iter
    (fun w ->
      let ref_result = reference w in
      List.iter
        (fun seed ->
          for trial = 1 to !trials do
            incr total;
            match one_trial ~base:!base ~seed ~trial w ~ref_result with
            | Ok (target, killed_at, report) ->
                Printf.printf
                  "PASS %s seed=%d trial=%d: killed at round %d (target \
                   %d), resumed in %d attempt(s)\n%!"
                  (workload_name w) seed trial killed_at target
                  report.Checkpoint.Supervisor.attempts
            | Error (msg, detail) ->
                incr failures;
                Printf.printf "FAIL %s seed=%d trial=%d: %s%s\n%!"
                  (workload_name w) seed trial msg
                  (match detail with
                  | Some (target, killed_at, _) ->
                      Printf.sprintf " (killed at round %d, target %d)"
                        killed_at target
                  | None -> "")
          done)
        seeds)
    !workloads;
  Printf.printf "crash harness: %d/%d trials passed\n%!"
    (!total - !failures) !total;
  if !failures > 0 then exit 1

#!/usr/bin/env python3
"""Compare two bench JSON snapshots for wall-clock drift.

Usage: bench_drift.py BASELINE AFTER [--tolerance 0.05] [--floor 0.02]

Every numeric field whose name ends in "_s" is a wall-clock measurement;
the script sums them per file and fails (exit 1) when AFTER's total
exceeds BASELINE's by more than the tolerance. Totals below the floor
(both files) pass unconditionally: smoke-sized workloads finish in
milliseconds and their jitter is not a regression signal. A missing
BASELINE is seeded from AFTER (exit 0), so the first run of a fresh
checkout records the snapshot the next run compares against.
"""

import argparse
import json
import shutil
import sys


def walk_seconds(node, path=""):
    if isinstance(node, dict):
        for k, v in node.items():
            yield from walk_seconds(v, f"{path}.{k}" if path else k)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            yield from walk_seconds(v, f"{path}[{i}]")
    elif isinstance(node, (int, float)) and path.rsplit(".", 1)[-1].endswith("_s"):
        yield path, float(node)


def total_seconds(path):
    with open(path) as f:
        data = json.load(f)
    fields = dict(walk_seconds(data))
    return sum(fields.values()), fields


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("after")
    ap.add_argument("--tolerance", type=float, default=0.05)
    ap.add_argument("--floor", type=float, default=0.02)
    args = ap.parse_args()

    try:
        base_total, base_fields = total_seconds(args.baseline)
    except FileNotFoundError:
        shutil.copyfile(args.after, args.baseline)
        print(f"bench_drift: no baseline at {args.baseline}; seeded it from "
              f"{args.after} — rerun to compare")
        return 0

    after_total, after_fields = total_seconds(args.after)
    if not base_fields or not after_fields:
        print("bench_drift: no *_s wall-clock fields found", file=sys.stderr)
        return 1

    drift = (after_total - base_total) / base_total if base_total > 0 else 0.0
    print(f"bench_drift: {args.baseline} {base_total:.4f}s -> "
          f"{args.after} {after_total:.4f}s ({drift:+.1%}, "
          f"tolerance {args.tolerance:.0%})")
    for key in sorted(set(base_fields) | set(after_fields)):
        b, a = base_fields.get(key), after_fields.get(key)
        if b is not None and a is not None:
            print(f"  {key}: {b:.4f}s -> {a:.4f}s")
        else:
            print(f"  {key}: only in {'baseline' if a is None else 'after'}")

    if base_total < args.floor and after_total < args.floor:
        print(f"bench_drift: both totals under the {args.floor}s floor — "
              "too small to measure drift, passing")
        return 0
    if drift > args.tolerance:
        print(f"bench_drift: FAIL — slowdown {drift:+.1%} exceeds "
              f"{args.tolerance:.0%}", file=sys.stderr)
        return 1
    print("bench_drift: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

(* Multi-seed differential fuzzing sweep.

   Usage: fuzz_campaign.exe [--count N] [--dir D] [seed ...]

   Runs one {!Portfolio.Fuzz.campaign} per seed (default seeds 1 7 42),
   prints each outcome, and exits 1 if any campaign produced a failure.
   With [--dir], minimized .repro counterexamples land there — the CI
   portfolio job uploads that directory as an artifact. *)

let usage () =
  prerr_endline "usage: fuzz_campaign [--count N] [--dir D] [seed ...]";
  exit 2

let () =
  let seeds = ref [] and count = ref 200 and dir = ref None in
  let rec parse = function
    | [] -> ()
    | "--count" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n > 0 -> count := n
        | _ -> usage ());
        parse rest
    | "--dir" :: d :: rest ->
        dir := Some d;
        parse rest
    | s :: rest ->
        (match int_of_string_opt s with
        | Some seed -> seeds := seed :: !seeds
        | None -> usage ());
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seeds = match List.rev !seeds with [] -> [ 1; 7; 42 ] | s -> s in
  let failed = ref 0 in
  List.iter
    (fun seed ->
      let outcome =
        Portfolio.Fuzz.campaign ?dir:!dir ~seed ~count:!count ()
      in
      Fmt.pr "%a" Portfolio.Fuzz.pp_outcome outcome;
      List.iter
        (fun f ->
          incr failed;
          Fmt.pr "  repro: %s@."
            (Option.value ~default:"(not written)"
               f.Portfolio.Fuzz.repro_path))
        outcome.Portfolio.Fuzz.failures)
    seeds;
  if !failed > 0 then (
    Fmt.pr "sweep: %d failure(s) across %d seed(s)@." !failed
      (List.length seeds);
    exit 1)
  else Fmt.pr "sweep: clean across %d seed(s)@." (List.length seeds)
